"""The fault-aware routing adapter.

The two properties that matter most:

1. **Zero overhead when healthy** — with an empty fault set the adapter
   returns the inner algorithm's hop sets *unchanged* (the very same
   frozensets), for every queue, destination, and state (hypothesis
   property below).
2. **Honesty when degraded** — dead hops are withheld, unreachable
   destinations park, detours are class-realizable, and
   :func:`verify_under_faults` reports the broken guarantees instead of
   pretending the paper's theorems still apply.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QueueId, verify_algorithm
from repro.faults import (
    EMPTY_FAULTS,
    FaultAwareRouting,
    FaultSchedule,
    link_down,
    node_down,
    verify_under_faults,
)
from repro.routing import HypercubeAdaptiveRouting, Mesh2DAdaptiveRouting
from repro.routing.hypercube import QA, QB
from repro.topology import Hypercube, Mesh2D

CUBE = Hypercube(4)
ALG = HypercubeAdaptiveRouting(CUBE)


@settings(max_examples=200, deadline=None)
@given(
    node=st.integers(0, 15),
    dst=st.integers(0, 15),
    kind=st.sampled_from([QA, QB]),
)
def test_empty_fault_set_is_hop_for_hop_identical(node, dst, kind):
    """Healthy adapter == unwrapped algorithm on every hop relation."""
    adapter = FaultAwareRouting(ALG)
    q = QueueId(node, kind)
    assert adapter.static_hops(q, dst) == ALG.static_hops(q, dst)
    assert adapter.dynamic_hops(q, dst) == ALG.dynamic_hops(q, dst)
    assert adapter.injection_targets(node, dst) == ALG.injection_targets(
        node, dst
    )
    assert adapter.buffer_classes(node, node ^ 1) == ALG.buffer_classes(
        node, node ^ 1
    )


def test_healthy_passthrough_returns_inner_objects():
    """With no faults the adapter forwards the inner result objects —
    it does not rebuild, filter, or copy them."""
    sentinel_static = frozenset({QueueId(1, QA)})
    sentinel_dynamic = frozenset({QueueId(2, QA)})
    sentinel_inject = frozenset({QueueId(0, QA)})

    class _Probe(HypercubeAdaptiveRouting):
        def static_hops(self, q, dst, state=None):
            return sentinel_static

        def dynamic_hops(self, q, dst, state=None):
            return sentinel_dynamic

        def injection_targets(self, src, dst, state=None):
            return sentinel_inject

    adapter = FaultAwareRouting(_Probe(Hypercube(3)))
    q = QueueId(0, QA)
    assert adapter.static_hops(q, 5) is sentinel_static
    assert adapter.dynamic_hops(q, 5) is sentinel_dynamic
    assert adapter.injection_targets(0, 5) is sentinel_inject


def test_healthy_adapter_still_verifies():
    """Wrapping costs no correctness: Section-2 conditions still hold."""
    report = verify_algorithm(
        FaultAwareRouting(HypercubeAdaptiveRouting(Hypercube(3))),
        check_minimal=False,
        check_fully_adaptive=False,
    )
    assert report.deadlock_free, report.errors


def test_dead_static_hop_is_withheld():
    alg = HypercubeAdaptiveRouting(Hypercube(3))
    adapter = FaultAwareRouting(alg)
    fs = FaultSchedule.fixed(alg.topology, [link_down(0, 1)]).final
    adapter.set_active(fs)
    # 0 -> 5: phase A fixes bits 0 and 2; the bit-0 hop (via node 1) died.
    q = QueueId(0, QA)
    inner = alg.static_hops(q, 5)
    assert QueueId(1, QA) in inner
    filtered = adapter.static_hops(q, 5)
    assert filtered == {QueueId(4, QA)}


def test_unreachable_destination_parks():
    cube = Hypercube(3)
    alg = HypercubeAdaptiveRouting(cube)
    adapter = FaultAwareRouting(alg)
    fs = FaultSchedule.fixed(cube, [node_down(7)]).final
    adapter.set_active(fs)
    assert adapter.injection_targets(0, 7) == frozenset()
    assert adapter.static_hops(QueueId(3, QA), 7) == frozenset()
    assert adapter.dynamic_hops(QueueId(3, QA), 7) == frozenset()
    # other destinations keep routing
    assert adapter.injection_targets(0, 5)


def test_detour_offers_class_realizable_escape():
    """Phase-B packet whose only minimal link died detours through a
    physically-present buffer class and still reaches the destination."""
    cube = Hypercube(3)
    alg = HypercubeAdaptiveRouting(cube)
    adapter = FaultAwareRouting(alg)
    # packet at 7 (B phase) heading to 5: only minimal hop is 7 -> 5.
    adapter.set_active(FaultSchedule.fixed(cube, [link_down(7, 5)]).final)
    q = QueueId(7, QB)
    assert alg.static_hops(q, 5) == {QueueId(5, QB)}
    det = adapter.static_hops(q, 5)
    assert det, "detour must offer an escape"
    for q2 in det:
        # the connecting link physically carries the class this hop uses
        cls = adapter.buffer_class(q, q2, False)
        assert cls in adapter.buffer_classes(7, q2.node)
    # and a detoured walk still delivers
    path = adapter.walk(7, 5)
    assert path[-1] == QueueId(5, "del")


def test_detour_can_be_disabled():
    cube = Hypercube(3)
    adapter = FaultAwareRouting(HypercubeAdaptiveRouting(cube), detour=False)
    adapter.set_active(FaultSchedule.fixed(cube, [link_down(7, 5)]).final)
    assert adapter.static_hops(QueueId(7, QB), 5) == frozenset()


def test_surviving_hops_never_increase_faulted_distance():
    """No offered hop walks away from the destination in the faulted
    metric — the invariant that makes degraded routing cycle-free."""
    mesh = Mesh2D(4)
    alg = Mesh2DAdaptiveRouting(mesh)
    adapter = FaultAwareRouting(alg)
    fs = FaultSchedule.fixed(
        mesh, [link_down((1, 2), (1, 3)), link_down((2, 2), (2, 3))]
    ).final
    adapter.set_active(fs)
    for dst in mesh.nodes():
        dist = fs.distances(mesh, dst)
        for u in mesh.nodes():
            if u == dst or u not in dist:
                continue
            for kind in alg.central_queue_kinds(u):
                q = QueueId(u, kind)
                hops = adapter.static_hops(q, dst) | adapter.dynamic_hops(
                    q, dst
                )
                for q2 in hops:
                    if q2.node == u or q2.is_delivery:
                        continue
                    assert dist[q2.node] <= dist[u], (q, q2, dst)


def test_verify_under_faults_reports_honestly():
    cube = Hypercube(3)
    alg = HypercubeAdaptiveRouting(cube)
    # healthy fault set: everything still passes
    fv = verify_under_faults(alg, EMPTY_FAULTS)
    assert fv.report.deadlock_free and not fv.degraded
    # cut node 0 off: unreachable pairs appear and guarantees degrade
    fs = FaultSchedule.fixed(
        cube, [link_down(0, 1), link_down(0, 2), link_down(0, 4)]
    ).final
    fv2 = verify_under_faults(alg, fs)
    assert fv2.degraded
    assert (1, 0) in fv2.unreachable_pairs
    assert (0, 7) in fv2.unreachable_pairs
    # minimality claims are dropped, not re-asserted
    assert fv2.report.minimal is None
    assert "unreachable" in fv2.summary()


def test_fault_verification_reuses_static_witnesses():
    """Satellite: honesty evidence comes from the static analyzer's
    witness builder — ``FaultVerification.witnesses`` is the report's
    witness list, not a separately derived artifact."""
    cube = Hypercube(3)
    alg = HypercubeAdaptiveRouting(cube)
    fv = verify_under_faults(alg, EMPTY_FAULTS)
    assert fv.witnesses == fv.report.witnesses
    assert fv.witnesses == []
    # cut node 0 off: Section-2 conditions break and the summary quotes
    # the analyzer's witnesses directly
    fs = FaultSchedule.fixed(
        cube, [link_down(0, 1), link_down(0, 2), link_down(0, 4)]
    ).final
    fv2 = verify_under_faults(alg, fs)
    assert fv2.witnesses is fv2.report.witnesses
    if fv2.witnesses:
        assert fv2.witnesses[0].describe() in fv2.summary()
