"""Engine tests: Section-7.1 timing semantics and delivery guarantees."""

import pytest

from repro.core import Message
from repro.routing import (
    HypercubeAdaptiveRouting,
    HypercubeHungRouting,
    Mesh2DAdaptiveRouting,
    ShuffleExchangeRouting,
    TorusRouting,
)
from repro.sim import (
    ComplementTraffic,
    DynamicInjection,
    PacketSimulator,
    RandomTraffic,
    StaticInjection,
    make_rng,
)
from repro.sim.injection import InjectionModel
from repro.topology import Hypercube, Mesh2D, ShuffleExchange, Torus


class SingleMessage(InjectionModel):
    """Inject exactly one message at cycle 0 (timing microscope)."""

    name = "single"

    def __init__(self, src, dst):
        self.src, self.dst = src, dst
        self.sent = False

    def attempt(self, sim, cycle):
        if not self.sent and sim.injection_queue_free(self.src):
            alg = sim.algorithm
            msg = Message(
                src=self.src,
                dst=self.dst,
                state=alg.initial_state(self.src, self.dst),
            )
            sim.place_in_injection_queue(self.src, msg, cycle)
            self.sent = True

    def finished(self, sim, cycle):
        return self.sent and sim.delivered_count == 1


def test_single_hop_latency_is_three():
    """1 hop = inject(0) -> queue(0) -> outbuf+link(1) -> queue(2)
    -> delivery(3): exactly 2h + 1 cycles."""
    alg = HypercubeAdaptiveRouting(Hypercube(3))
    sim = PacketSimulator(alg, SingleMessage(0b000, 0b001))
    res = sim.run(max_cycles=50)
    assert res.delivered == 1
    assert res.l_avg == 3 and res.l_max == 3


@pytest.mark.parametrize("dst,hops", [(0b001, 1), (0b011, 2), (0b111, 3)])
def test_uncontended_latency_formula(dst, hops):
    alg = HypercubeAdaptiveRouting(Hypercube(3))
    sim = PacketSimulator(alg, SingleMessage(0b000, dst))
    res = sim.run(max_cycles=50)
    assert res.l_max == 2 * hops + 1


def test_phase_change_costs_nothing():
    """A mixed route (one 0->1, one 1->0 correction) still follows the
    2h+1 law: the internal A->B move folds into queue entry."""
    alg = HypercubeAdaptiveRouting(Hypercube(3))
    sim = PacketSimulator(alg, SingleMessage(0b001, 0b010))
    res = sim.run(max_cycles=50)
    assert res.l_max == 2 * 2 + 1


def test_complement_static_reproduces_table2_exactly():
    """Table 2: complement with one packet per node is deterministic,
    conflict-free, and costs exactly 2n+1 for every packet."""
    for n in (3, 4, 5):
        cube = Hypercube(n)
        alg = HypercubeAdaptiveRouting(cube)
        inj = StaticInjection(1, ComplementTraffic(cube), make_rng(0))
        res = PacketSimulator(alg, inj).run(max_cycles=10_000)
        assert res.delivered == cube.num_nodes
        assert res.l_avg == 2 * n + 1
        assert res.l_max == 2 * n + 1


def test_all_static_packets_delivered():
    cube = Hypercube(4)
    alg = HypercubeAdaptiveRouting(cube)
    inj = StaticInjection(4, RandomTraffic(cube), make_rng(2))
    res = PacketSimulator(alg, inj).run(max_cycles=20_000)
    assert res.delivered == res.injected == 4 * cube.num_nodes
    assert res.undelivered == 0


def test_static_latency_lower_bound():
    """No packet can beat 2*distance+1 cycles."""
    cube = Hypercube(3)
    alg = HypercubeAdaptiveRouting(cube)
    inj = StaticInjection(2, RandomTraffic(cube), make_rng(3))
    sim = PacketSimulator(alg, inj, trace=True)
    res = sim.run(max_cycles=10_000)
    assert res.latency.minimum >= 3  # distance >= 1


def test_tracing_records_queue_paths():
    cube = Hypercube(3)
    alg = HypercubeAdaptiveRouting(cube)
    inj = StaticInjection(1, ComplementTraffic(cube), make_rng(0))
    sim = PacketSimulator(alg, inj, trace=True)
    sim.run(max_cycles=1000)
    # All messages delivered; traced hops end at a central queue of dst.
    # (Delivery itself is recorded via record_hop on the queue moves.)
    # Check at least that traces are non-empty and start at injection.
    for u in cube.nodes():
        pass  # messages are owned by the injection model; smoke-check via stats


def test_dynamic_run_fixed_duration():
    cube = Hypercube(3)
    alg = HypercubeAdaptiveRouting(cube)
    inj = DynamicInjection(
        0.5, RandomTraffic(cube), make_rng(4), duration=200, warmup=50
    )
    res = PacketSimulator(alg, inj).run()
    assert res.cycles == 200
    assert 0.0 < res.injection_rate <= 1.0
    assert res.latency.count > 0


def test_dynamic_low_rate_injection_rate_near_one():
    cube = Hypercube(4)
    alg = HypercubeAdaptiveRouting(cube)
    inj = DynamicInjection(
        0.05, RandomTraffic(cube), make_rng(5), duration=400, warmup=100
    )
    res = PacketSimulator(alg, inj).run()
    assert res.injection_rate > 0.95


def test_deterministic_reruns_identical():
    cube = Hypercube(4)

    def run():
        alg = HypercubeAdaptiveRouting(cube)
        inj = DynamicInjection(
            0.7, RandomTraffic(cube), make_rng(9), duration=150, warmup=30
        )
        return PacketSimulator(alg, inj).run()

    a, b = run(), run()
    assert a.l_avg == b.l_avg
    assert a.l_max == b.l_max
    assert a.injection_rate == b.injection_rate


def test_queue_capacity_respected():
    cube = Hypercube(3)
    alg = HypercubeAdaptiveRouting(cube)
    inj = DynamicInjection(
        1.0, ComplementTraffic(cube), make_rng(6), duration=150, warmup=10
    )
    sim = PacketSimulator(alg, inj, central_capacity=2)
    sim.run()
    for u in sim.nodes:
        for q in sim.central[u].values():
            assert len(q) <= 2


def test_occupancy_collection():
    cube = Hypercube(3)
    alg = HypercubeHungRouting(cube)
    inj = DynamicInjection(
        1.0, RandomTraffic(cube), make_rng(7), duration=100, warmup=10
    )
    sim = PacketSimulator(alg, inj, collect_occupancy=True)
    res = sim.run()
    assert res.occupancy["mean"]
    assert max(res.occupancy["peak"].values()) <= 5


@pytest.mark.parametrize(
    "make",
    [
        lambda: (HypercubeAdaptiveRouting(Hypercube(3)), Hypercube(3)),
        lambda: (Mesh2DAdaptiveRouting(Mesh2D(3)), Mesh2D(3)),
        lambda: (TorusRouting(Torus((3, 3))), Torus((3, 3))),
        lambda: (
            ShuffleExchangeRouting(ShuffleExchange(3)),
            ShuffleExchange(3),
        ),
    ],
    ids=["hypercube", "mesh", "torus", "shuffle-exchange"],
)
def test_every_topology_delivers_under_load(make):
    alg, topo = make()
    alg = type(alg)(topo) if False else alg
    inj = StaticInjection(3, RandomTraffic(alg.topology), make_rng(8))
    res = PacketSimulator(alg, inj).run(max_cycles=50_000)
    assert res.delivered == res.injected
    assert res.undelivered == 0
