"""Cross-engine validation under faults.

Two guarantees:

1. **Zero faults, zero footprint** — a healthy fault schedule wired
   through the full fault stack (adapter + injector + watchdog) leaves
   both engines byte-identical to the un-instrumented baseline.
2. **Same schedule, same story** — the reference and compiled engines
   agree packet-for-packet under any identical fault schedule,
   including mid-run epoch changes that force the compiled engine to
   drop its routing-plan cache.
"""

import pytest

from repro.faults import FaultSchedule, link_down, link_stall, node_down
from repro.faults.experiments import make_fault_simulator
from repro.routing import (
    HypercubeAdaptiveRouting,
    Mesh2DAdaptiveRouting,
)
from repro.sim import (
    CompiledPacketSimulator,
    DynamicInjection,
    PacketSimulator,
    RandomTraffic,
    StaticInjection,
    make_rng,
)
from repro.topology import Hypercube, Mesh2D

FAMILIES = {
    "hypercube": (lambda: Hypercube(4), HypercubeAdaptiveRouting),
    "mesh": (lambda: Mesh2D(5), Mesh2DAdaptiveRouting),
}


def _static(topo, seed=0, packets=2):
    return StaticInjection(packets, RandomTraffic(topo), make_rng(seed))


def _faulted_result(key, make_schedule, engine, seed=0, **kwargs):
    build, alg_cls = FAMILIES[key]
    topo = build()
    alg = alg_cls(topo)
    sim = make_fault_simulator(
        alg, _static(topo, seed), make_schedule(topo), engine=engine, **kwargs
    )
    return sim.run(max_cycles=500_000)


def assert_identical(a, b):
    assert sorted(a.latency.values) == sorted(b.latency.values)
    assert a.cycles == b.cycles
    assert a.injected == b.injected
    assert a.delivered == b.delivered
    assert a.undeliverable == b.undeliverable
    assert a.halt == b.halt


@pytest.mark.parametrize("key", sorted(FAMILIES))
def test_zero_faults_byte_identical_to_uninstrumented(key):
    """The full fault stack with a healthy schedule changes nothing."""
    build, alg_cls = FAMILIES[key]
    for engine_cls, engine in (
        (PacketSimulator, "reference"),
        (CompiledPacketSimulator, "compiled"),
    ):
        topo = build()
        baseline = engine_cls(alg_cls(topo), _static(topo)).run(
            max_cycles=500_000
        )
        faulted = _faulted_result(key, FaultSchedule.healthy, engine)
        assert_identical(baseline, faulted)
        assert faulted.halt is None and faulted.undeliverable == 0


SCHEDULES = {
    "immediate-links": lambda topo: FaultSchedule.random_links(
        topo, 3, seed=13
    ),
    "onset-links": lambda topo: FaultSchedule.bernoulli_links(
        topo, 0.08, seed=5, onset_max=25
    ),
    "scripted-mixed": lambda topo: FaultSchedule.fixed(
        topo,
        [
            link_down(*_first_link(topo), at=4),
            link_stall(*_second_link(topo), at=6, until=60),
            node_down(_last_node(topo), at=15),
        ],
    ),
}


def _first_link(topo):
    return next(iter(sorted(topo.links(), key=repr)))


def _second_link(topo):
    links = sorted(topo.links(), key=repr)
    return links[len(links) // 2]


def _last_node(topo):
    return sorted(topo.nodes(), key=repr)[-1]


@pytest.mark.parametrize("key", sorted(FAMILIES))
@pytest.mark.parametrize("name", sorted(SCHEDULES))
def test_engines_identical_under_identical_schedule(key, name):
    make_schedule = SCHEDULES[name]
    ref = _faulted_result(key, make_schedule, "reference", seed=3)
    compiled = _faulted_result(key, make_schedule, "compiled", seed=3)
    assert_identical(ref, compiled)


@pytest.mark.parametrize("key", sorted(FAMILIES))
def test_engines_identical_with_traced_overhead(key):
    """Tracing (used by reroute-overhead accounting) keeps the engines
    aligned too, and both record the same delivered routes."""
    build, alg_cls = FAMILIES[key]
    routes = {}
    for engine in ("reference", "compiled"):
        topo = build()
        sim = make_fault_simulator(
            alg_cls(topo),
            _static(topo, seed=6),
            FaultSchedule.random_links(topo, 2, seed=21),
            engine=engine,
            trace=True,
        )
        sim.delivered_messages = []
        sim.run(max_cycles=500_000)
        routes[engine] = sorted(
            (m.src, m.dst, tuple(m.hops)) for m in sim.delivered_messages
        )
    assert routes["reference"] == routes["compiled"]


def test_epoch_change_invalidates_compiled_plans():
    """A mid-run fault onset must flush the compiled plan cache: plans
    computed against the healthy epoch are wrong afterwards."""
    topo = Hypercube(4)
    alg = HypercubeAdaptiveRouting(topo)
    schedule = FaultSchedule.fixed(topo, [link_down(0, 1, at=8)])
    inj = DynamicInjection(
        0.5, RandomTraffic(topo), make_rng(9), duration=120, warmup=20
    )
    sim = make_fault_simulator(alg, inj, schedule, engine="compiled")
    before = None
    sim.injection.setup(sim)
    for _ in range(7):
        sim.step()
    before = sim.plan_cache
    for _ in range(5):
        sim.step()
    assert sim.plan_cache is not before, "epoch change must rebuild plans"


def test_fast_engine_request_falls_back_to_compiled():
    """The adapter is never fast-eligible: an inherited REPRO_ENGINE=fast
    must fall back to the compiled engine instead of raising."""
    topo = Hypercube(3)
    sim = make_fault_simulator(
        HypercubeAdaptiveRouting(topo),
        _static(topo),
        FaultSchedule.healthy(topo),
        engine="fast",
        trace=True,
    )
    assert isinstance(sim, CompiledPacketSimulator)
