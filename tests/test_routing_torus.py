"""Unit tests for the torus routing reconstruction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QueueId, node_path, verify_algorithm
from repro.routing import TorusRouting
from repro.topology import Torus


def torus_alg(shape=(3, 3), **kw):
    return TorusRouting(Torus(shape), **kw)


def test_requires_torus():
    from repro.topology import Mesh2D

    with pytest.raises(TypeError):
        TorusRouting(Mesh2D(3))


def test_queue_count_is_2_classes_per_crossing():
    alg = torus_alg()
    kinds = alg.central_queue_kinds((0, 0))
    # 2-D torus: classes 0..2, phases A/B -> 6 central queues.
    assert len(kinds) == 6
    assert set(kinds) == {"A0", "B0", "A1", "B1", "A2", "B2"}


def test_four_queue_variant_construction():
    alg = torus_alg(classes=2)
    assert len(alg.central_queue_kinds((0, 0))) == 4


def test_four_queue_variant_breaks_on_double_crossings():
    """With only two dateline classes a route crossing two datelines
    wraps inside the saturated class: the checker must reject it.

    This machine-checks why our reconstruction needs 6 queues where
    the paper claims 4 (see DESIGN.md / EXPERIMENTS.md)."""
    alg = torus_alg((3, 3), classes=2)
    report = verify_algorithm(
        alg, check_minimal=False, check_fully_adaptive=False
    )
    assert not report.static_acyclic


def test_initial_state_directions():
    alg = torus_alg((5, 5))
    assert alg.initial_state((0, 0), (1, 4)) == (+1, -1)
    assert alg.initial_state((0, 0), (3, 0)) == (-1, 0)
    assert alg.initial_state((2, 2), (2, 2)) == (0, 0)


def test_crossing_moves_bump_class():
    alg = torus_alg((5, 5))
    src, dst = (4, 0), (0, 0)
    dirs = alg.initial_state(src, dst)
    assert dirs == (+1, 0)
    # No ascending move remains, so phase A switches to B in place...
    assert alg.static_hops(QueueId(src, "A0"), dst, dirs) == {
        QueueId(src, "B0")
    }
    # ...and the dateline crossing is taken from B, bumping the class.
    assert alg.static_hops(QueueId(src, "B0"), dst, dirs) == {
        QueueId((0, 0), "A1")
    }


def test_walk_is_minimal():
    t = Torus((5, 5))
    alg = TorusRouting(t)
    for src, dst in [((0, 0), (4, 4)), ((1, 2), (3, 0)), ((4, 4), (2, 1))]:
        nodes = node_path(alg.walk(src, dst))
        assert nodes[0] == src and nodes[-1] == dst
        assert len(nodes) - 1 == t.distance(src, dst)


def test_fully_adaptive_flag_depends_on_parity():
    assert TorusRouting(Torus((3, 5))).is_fully_adaptive
    assert not TorusRouting(Torus((4, 4))).is_fully_adaptive


def test_even_torus_still_verifies_deadlock_free():
    alg = torus_alg((4, 4))
    report = verify_algorithm(
        alg, check_minimal=True, check_fully_adaptive=False
    )
    assert report.deadlock_free and report.minimal, report.errors


def test_rejects_zero_classes():
    with pytest.raises(ValueError):
        torus_alg(classes=0)


def test_3d_torus_verifies():
    alg = TorusRouting(Torus((3, 3, 3)))
    # Full minimality/adaptivity enumeration is too big in 3-D; check
    # the deadlock-freedom conditions on a source sample.
    report = verify_algorithm(
        alg,
        sources=[(0, 0, 0), (2, 2, 2), (1, 2, 0)],
        check_minimal=False,
        check_fully_adaptive=False,
    )
    assert report.deadlock_free, report.errors


@settings(max_examples=40, deadline=None)
@given(st.sampled_from([(3, 3), (4, 3), (5, 5), (4, 4)]), st.data())
def test_walk_minimal_random_pairs(shape, data):
    t = Torus(shape)
    alg = TorusRouting(t)
    nodes_all = list(t.nodes())
    src = data.draw(st.sampled_from(nodes_all))
    dst = data.draw(st.sampled_from(nodes_all))
    if src == dst:
        return
    nodes = node_path(alg.walk(src, dst))
    assert len(nodes) - 1 == t.distance(src, dst)
    for a, b in zip(nodes, nodes[1:]):
        assert t.is_adjacent(a, b)
