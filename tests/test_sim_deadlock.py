"""Deadlock stress tests.

The paper's central claim is deterministic deadlock freedom under any
congestion.  We stress the simulator with tiny queues and saturating
loads on every algorithm, and separately show that the watchdog *does*
catch a deliberately deadlock-prone routing function.
"""

import pytest

from repro.core import QueueId, deliver
from repro.core.routing_function import RoutingAlgorithm
from repro.routing import (
    HypercubeAdaptiveRouting,
    HypercubeHungRouting,
    Mesh2DAdaptiveRouting,
    ShuffleExchangeRouting,
    TorusRouting,
)
from repro.sim import (
    ComplementTraffic,
    DynamicInjection,
    PacketSimulator,
    RandomTraffic,
    StaticInjection,
    make_rng,
)
from repro.sim.engine import DeadlockError
from repro.topology import Hypercube, Mesh2D, ShuffleExchange, Torus


def saturate(alg, pattern, seed=0, capacity=1, duration=400):
    """Run a saturating dynamic load with minimal queue capacities."""
    inj = DynamicInjection(
        1.0, pattern, make_rng(seed), duration=duration, warmup=duration // 4
    )
    sim = PacketSimulator(alg, inj, central_capacity=capacity, stall_limit=300)
    return sim.run()


def test_hypercube_adaptive_no_deadlock_capacity_one():
    cube = Hypercube(4)
    res = saturate(HypercubeAdaptiveRouting(cube), ComplementTraffic(cube))
    assert res.delivered > 0


def test_hypercube_hung_no_deadlock_capacity_one():
    cube = Hypercube(4)
    res = saturate(HypercubeHungRouting(cube), ComplementTraffic(cube))
    assert res.delivered > 0


def test_mesh_no_deadlock_capacity_one():
    mesh = Mesh2D(4)
    res = saturate(Mesh2DAdaptiveRouting(mesh), RandomTraffic(mesh), seed=1)
    assert res.delivered > 0


def test_torus_no_deadlock_capacity_one():
    t = Torus((4, 4))
    res = saturate(TorusRouting(t), RandomTraffic(t), seed=2)
    assert res.delivered > 0


def test_shuffle_exchange_no_deadlock_capacity_one():
    se = ShuffleExchange(4)
    res = saturate(ShuffleExchangeRouting(se), RandomTraffic(se), seed=3)
    assert res.delivered > 0


def test_static_overload_drains_completely():
    """5x the queue capacity in backlog still drains to zero."""
    cube = Hypercube(4)
    alg = HypercubeAdaptiveRouting(cube)
    inj = StaticInjection(10, ComplementTraffic(cube), make_rng(4))
    sim = PacketSimulator(alg, inj, central_capacity=1, stall_limit=500)
    res = sim.run(max_cycles=100_000)
    assert res.delivered == res.injected == 10 * cube.num_nodes


class _GreedySwap(RoutingAlgorithm):
    """Single-queue greedy minimal routing: deadlocks under pressure.

    Two adjacent nodes exchanging streams fill each other's only queue
    and wait forever — the classic store-and-forward deadlock the
    paper's queue disciplines exist to prevent.
    """

    name = "greedy-swap"

    def central_queue_kinds(self, node):
        return ("Q",)

    def injection_targets(self, src, dst, state=None):
        return frozenset({QueueId(src, "Q")})

    def static_hops(self, q, dst, state=None):
        u = q.node
        if u == dst:
            return frozenset({deliver(dst)})
        topo = self.topology
        du = topo.distance(u, dst)
        return frozenset(
            QueueId(v, "Q")
            for v in topo.neighbors(u)
            if topo.distance(v, dst) == du - 1
        )


def test_watchdog_catches_real_deadlock():
    cube = Hypercube(2)
    alg = _GreedySwap(cube)
    inj = DynamicInjection(
        1.0, ComplementTraffic(cube), make_rng(5), duration=100_000, warmup=10
    )
    sim = PacketSimulator(alg, inj, central_capacity=1, stall_limit=200)
    with pytest.raises(DeadlockError):
        sim.run()


def test_stall_limit_not_triggered_by_idle_network():
    """An empty network is not a deadlock: no active packets, no alarm."""
    cube = Hypercube(3)
    alg = HypercubeAdaptiveRouting(cube)
    inj = StaticInjection(1, ComplementTraffic(cube), make_rng(6))
    sim = PacketSimulator(alg, inj, stall_limit=5)

    # Run well past delivery; finished() stops us, but even stepping
    # manually must not raise because active == 0.
    sim.injection.setup(sim)
    for _ in range(100):
        sim.step()
    assert sim.active == 0
