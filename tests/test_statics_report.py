"""JSON + SARIF report formats for the static analyzer."""

import json

import pytest

from repro.statics import to_json_report, to_sarif
from repro.statics.lint import LintFinding
from repro.statics.registry import target_by_key


@pytest.fixture(scope="module")
def analyses():
    return {
        "pass": target_by_key("torus").analyze(),
        "fail": target_by_key("unrestricted-torus").analyze(),
    }


def _expectations(analyses):
    return {
        analyses["pass"].name: "pass",
        analyses["fail"].name: "fail",
    }


def test_json_report_schema_and_gate(analyses):
    doc = to_json_report(
        list(analyses.values()), expectations=_expectations(analyses)
    )
    assert doc["schema"] == "repro-static-analysis/1"
    assert doc["gate_ok"] is True  # fail-expected target failed as expected
    assert len(doc["instances"]) == 2
    by_name = {r["name"]: r for r in doc["instances"]}
    passing = by_name[analyses["pass"].name]
    failing = by_name[analyses["fail"].name]
    assert passing["certified"] and passing["gate_ok"]
    assert not failing["certified"] and failing["gate_ok"]
    assert failing["witnesses"][0]["rows"]
    json.dumps(doc)  # must be serializable as-is


def test_json_report_gate_breaks_on_unexpected_failure(analyses):
    doc = to_json_report(
        [analyses["fail"]],
        expectations={analyses["fail"].name: "pass"},
    )
    assert doc["gate_ok"] is False


def test_json_report_gate_breaks_on_lint_findings(analyses):
    finding = LintFinding("repro/x.py", 1, 0, "unseeded-rng", "boom")
    doc = to_json_report(
        [analyses["pass"]],
        findings=[finding],
        expectations=_expectations(analyses),
    )
    assert doc["gate_ok"] is False
    assert doc["determinism_findings"] == [finding.to_dict()]


def test_sarif_document_shape(analyses):
    doc = to_sarif(
        list(analyses.values()),
        findings=[LintFinding("repro/x.py", 3, 1, "observer-api", "drift")],
        expectations=_expectations(analyses),
    )
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {
        "deadlock-freedom",
        "unseeded-rng",
        "set-iteration-order",
        "observer-api",
    } == rule_ids
    # one result for the refuted instance, one for the lint finding;
    # the certified instance produces none
    assert len(run["results"]) == 2
    deadlock = next(
        r for r in run["results"] if r["ruleId"] == "deadlock-freedom"
    )
    # registered negative example at note level (gate is green)
    assert deadlock["level"] == "note"
    assert deadlock["properties"]["witnesses"]
    lint = next(r for r in run["results"] if r["ruleId"] == "observer-api")
    assert lint["level"] == "error"
    loc = lint["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "repro/x.py"
    assert loc["region"]["startLine"] == 3
    json.dumps(doc)


def test_sarif_unexpected_failure_is_error_level(analyses):
    doc = to_sarif(
        [analyses["fail"]], expectations={analyses["fail"].name: "pass"}
    )
    assert doc["runs"][0]["results"][0]["level"] == "error"
