"""Unit tests for QDG construction, levels, and stats."""

import networkx as nx
import pytest

from repro.core import (
    QueueId,
    build_qdg,
    explore,
    find_cycle,
    is_acyclic,
    qdg_stats,
    queue_levels,
    shortest_cycle,
)
from repro.routing import (
    HypercubeAdaptiveRouting,
    HypercubeHungRouting,
    Mesh2DAdaptiveRouting,
)
from repro.topology import Hypercube, Mesh2D


def test_static_qdg_is_dag(cube3):
    alg = HypercubeAdaptiveRouting(cube3)
    qdg = build_qdg(alg, include_dynamic=False)
    assert is_acyclic(qdg)
    assert find_cycle(qdg) is None


def test_extended_qdg_has_cycles(cube3):
    """The whole point of dynamic links: the extended QDG is cyclic."""
    alg = HypercubeAdaptiveRouting(cube3)
    qdg = build_qdg(alg, include_dynamic=True)
    assert not is_acyclic(qdg)
    assert find_cycle(qdg) is not None


def test_hung_variant_has_no_dynamic_edges(cube3):
    alg = HypercubeHungRouting(cube3)
    qdg = build_qdg(alg, include_dynamic=True)
    stats = qdg_stats(qdg)
    assert stats["dynamic_edges"] == 0
    assert is_acyclic(qdg)


def test_qdg_covers_all_queues(cube3):
    alg = HypercubeAdaptiveRouting(cube3)
    qdg = build_qdg(alg)
    # 8 nodes x (inj, A, B, del)
    assert qdg.number_of_nodes() == 8 * 4


def test_dynamic_edges_are_a_to_a(cube3):
    alg = HypercubeAdaptiveRouting(cube3)
    qdg = build_qdg(alg)
    for u, v, dyn in qdg.edges(data="dynamic"):
        if dyn:
            assert u.kind == "A" and v.kind == "A"
            # dynamic hypercube links correct a 1 into a 0.
            assert bin(u.node).count("1") == bin(v.node).count("1") + 1


def test_exploration_restricted_to_destinations(cube3):
    alg = HypercubeAdaptiveRouting(cube3)
    exp = explore(alg, destinations=[0b111])
    dsts = {t.dst for t in exp.transitions}
    assert dsts == {0b111}


def test_levels_monotone_along_static_edges(mesh3):
    alg = Mesh2DAdaptiveRouting(mesh3)
    qdg = build_qdg(alg, include_dynamic=False)
    levels = queue_levels(qdg)
    for u, v in qdg.edges():
        assert levels[v] >= levels[u] + 1


def test_levels_zero_at_injection(cube3):
    alg = HypercubeAdaptiveRouting(cube3)
    qdg = build_qdg(alg, include_dynamic=False)
    levels = queue_levels(qdg)
    for q in qdg.nodes:
        if q.is_injection:
            assert levels[q] == 0


def test_levels_reject_cyclic_graph():
    g = nx.DiGraph()
    a, b = QueueId(0, "A"), QueueId(1, "A")
    g.add_edge(a, b)
    g.add_edge(b, a)
    with pytest.raises(ValueError):
        queue_levels(g)


def test_qdg_stats_counts(cube3):
    alg = HypercubeAdaptiveRouting(cube3)
    qdg = build_qdg(alg)
    stats = qdg_stats(qdg)
    assert stats["queues"] == 32
    assert stats["static_edges"] > 0
    assert stats["dynamic_edges"] > 0
    assert (
        stats["static_edges"] + stats["dynamic_edges"] == qdg.number_of_edges()
    )


def test_phase_b_edges_descend_levels(cube3):
    """Phase-B static hops always clear a 1 (move toward 0...0)."""
    alg = HypercubeAdaptiveRouting(cube3)
    qdg = build_qdg(alg, include_dynamic=False)
    for u, v in qdg.edges():
        if u.kind == "B" and v.kind == "B" and u.node != v.node:
            assert bin(u.node).count("1") == bin(v.node).count("1") + 1


# ---------------------------------------------------------------------------
# shortest_cycle on adversarial graphs
# ---------------------------------------------------------------------------


def _closes(cycle):
    """Edge list forms a closed walk and every edge exists."""
    assert cycle, "expected a cycle"
    for (u, v), (nu, _) in zip(cycle, cycle[1:] + cycle[:1]):
        assert v == nu
    return len(cycle)


def test_shortest_cycle_none_on_dag():
    g = nx.DiGraph([(0, 1), (1, 2), (0, 2)])
    assert shortest_cycle(g) is None


def test_shortest_cycle_single_node_no_edges():
    g = nx.DiGraph()
    g.add_node(0)
    assert shortest_cycle(g) is None


def test_shortest_cycle_self_loop_wins():
    """A self-loop is a 1-cycle and beats any longer cycle."""
    g = nx.DiGraph([(0, 1), (1, 2), (2, 0), (3, 3)])
    cycle = shortest_cycle(g)
    assert cycle == [(3, 3)]


def test_shortest_cycle_parallel_antiparallel_edges():
    """Anti-parallel edges form a 2-cycle; DiGraph collapses true
    parallel edges so they never shorten anything."""
    g = nx.DiGraph([(0, 1), (1, 0), (1, 2), (2, 3), (3, 1)])
    g.add_edge(0, 1)  # parallel re-add is a no-op on DiGraph
    cycle = shortest_cycle(g)
    assert _closes(cycle) == 2
    assert set(cycle) == {(0, 1), (1, 0)}


def test_shortest_cycle_disconnected_components():
    """The shortest cycle is found even when a larger cycle lives in a
    different (and earlier-sorted) component."""
    g = nx.DiGraph()
    g.add_edges_from([(0, 1), (1, 2), (2, 3), (3, 0)])  # 4-cycle
    g.add_edges_from([(10, 11), (11, 10)])  # 2-cycle, other component
    g.add_node(99)  # isolated node
    cycle = shortest_cycle(g)
    assert _closes(cycle) == 2
    assert set(cycle) == {(10, 11), (11, 10)}


def test_shortest_cycle_prefers_shorter_over_first_found():
    g = nx.DiGraph()
    # long cycle reachable from low-sorted nodes, short one elsewhere
    g.add_edges_from([(0, 1), (1, 2), (2, 4), (4, 5), (5, 0)])  # 5-cycle
    g.add_edges_from([(6, 7), (7, 8), (8, 6)])  # 3-cycle
    assert _closes(shortest_cycle(g)) == 3


def test_shortest_cycle_deterministic():
    edges = [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]
    runs = {tuple(shortest_cycle(nx.DiGraph(edges))) for _ in range(5)}
    assert len(runs) == 1
