"""Unit tests for mesh topologies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology import Mesh, Mesh2D


def test_num_nodes():
    assert Mesh((3, 4)).num_nodes == 12
    assert Mesh2D(5).num_nodes == 25
    assert Mesh((2, 2, 2)).num_nodes == 8


def test_rejects_degenerate_dimensions():
    with pytest.raises(ValueError):
        Mesh((1, 4))
    with pytest.raises(ValueError):
        Mesh(())


def test_nodes_enumeration_row_major():
    nodes = list(Mesh((2, 2)).nodes())
    assert nodes == [(0, 0), (0, 1), (1, 0), (1, 1)]


def test_interior_corner_edge_degrees():
    m = Mesh2D(3)
    assert len(m.neighbors((1, 1))) == 4  # interior
    assert len(m.neighbors((0, 0))) == 2  # corner
    assert len(m.neighbors((0, 1))) == 3  # edge


def test_neighbors_contents():
    m = Mesh2D(3)
    assert set(m.neighbors((1, 1))) == {(0, 1), (2, 1), (1, 0), (1, 2)}


def test_adjacency():
    m = Mesh2D(4)
    assert m.is_adjacent((0, 0), (0, 1))
    assert not m.is_adjacent((0, 0), (1, 1))
    assert not m.is_adjacent((0, 0), (0, 0))


def test_distance_manhattan():
    m = Mesh2D(5)
    assert m.distance((0, 0), (4, 4)) == 8
    assert m.distance((2, 3), (2, 3)) == 0
    assert m.distance((1, 4), (3, 0)) == 6


def test_diameter():
    assert Mesh2D(4).diameter == 6
    assert Mesh((3, 3, 3)).diameter == 6


def test_level():
    m = Mesh2D(4)
    assert m.level((0, 0)) == 0
    assert m.level((3, 2)) == 5


def test_step():
    m = Mesh2D(3)
    assert m.step((1, 1), 0, +1) == (2, 1)
    assert m.step((1, 1), 1, -1) == (1, 0)
    with pytest.raises(ValueError):
        m.step((0, 0), 0, -1)


def test_contains():
    m = Mesh2D(3)
    assert m.contains((2, 2))
    assert not m.contains((3, 0))
    assert not m.contains((0,))


def test_rectangular_mesh():
    m = Mesh2D(2, 5)
    assert m.num_nodes == 10
    assert m.distance((0, 0), (1, 4)) == 5


def test_validate_passes():
    Mesh2D(4).validate()
    Mesh((2, 3, 2)).validate()


def test_link_index_contiguous():
    m = Mesh2D(3)
    for u in m.nodes():
        idx = sorted(m.link_index(u, v) for v in m.neighbors(u))
        assert idx == list(range(len(m.neighbors(u))))


@given(st.integers(2, 5), st.integers(2, 5), st.data())
def test_neighbors_symmetric(rows, cols, data):
    m = Mesh2D(rows, cols)
    nodes = list(m.nodes())
    u = data.draw(st.sampled_from(nodes))
    for v in m.neighbors(u):
        assert u in m.neighbors(v)
        assert m.distance(u, v) == 1


@given(st.integers(2, 5), st.data())
def test_distance_matches_bfs(rows, data):
    from repro.topology import bfs_distance

    m = Mesh2D(rows)
    nodes = list(m.nodes())
    u = data.draw(st.sampled_from(nodes))
    v = data.draw(st.sampled_from(nodes))
    assert m.distance(u, v) == bfs_distance(m, u, v)
