"""Probe behavior on live engines, plus exporters and snapshots."""

import csv
import io
import json
import math

import pytest

from repro.core.message import reset_message_ids
from repro.experiments.runner import build_simulator
from repro.routing import HypercubeAdaptiveRouting
from repro.sim import RandomTraffic, StaticInjection, make_rng
from repro.telemetry import (
    TelemetryProbe,
    occupancy_csv,
    prometheus_text,
    queue_occupancy_snapshot,
    summary_json,
    wait_for_graph,
    write_artifacts,
)
from repro.topology import Hypercube


def run_probe(n=3, probe=None, engine="reference", seed=0, packets=1):
    reset_message_ids()
    topo = Hypercube(n)
    alg = HypercubeAdaptiveRouting(topo)
    model = StaticInjection(packets, RandomTraffic(topo), make_rng(seed))
    probe = probe if probe is not None else TelemetryProbe()
    sim = build_simulator(alg, model, engine=engine, telemetry=probe)
    result = sim.run(max_cycles=100_000)
    return probe, result


def test_probe_populates_summary_and_result():
    probe, result = run_probe()
    s = probe.summary
    assert result.telemetry is s
    assert s["injected"] == result.injected
    assert s["delivered"] == result.delivered
    assert s["cycles"] == result.cycles
    assert s["hops"]["total"] == s["hops"]["static"] + s["hops"]["dynamic"]
    assert 0 <= s["hops"]["dynamic_fraction"] <= 1
    assert 0 < s["link_utilization"] <= 1
    assert s["latency"]["count"] == result.delivered
    assert s["latency"]["mean"] == pytest.approx(result.l_avg)
    assert s["latency"]["max"] == result.l_max
    assert s["drops"] == 0 and s["fault_epochs"] == 0


def test_event_log_conserves_packets():
    probe, result = run_probe(packets=2)
    counts = probe.log.counts()
    assert counts["inject"] == result.injected
    assert counts["deliver"] == result.delivered
    assert counts.get("drop", 0) == 0


def test_metrics_only_mode_keeps_no_log_or_series():
    probe, _ = run_probe(probe=TelemetryProbe(events=False))
    assert probe.log is None
    assert not probe.series_enabled
    assert probe.occupancy_series == []
    assert probe.summary["events"] is None
    assert probe.summary["injected"] > 0


def test_disabled_probe_is_inert():
    probe, result = run_probe(probe=TelemetryProbe(enabled=False))
    assert probe.summary is None
    assert result.telemetry is None
    assert probe.registry.snapshot() == {}
    assert probe.sim._events is None


def test_occupancy_sampling_stride():
    dense, _ = run_probe(probe=TelemetryProbe(occupancy_every=1))
    sparse, _ = run_probe(probe=TelemetryProbe(occupancy_every=4))
    d = dense.summary["occupancy"]["samples"]
    s = sparse.summary["occupancy"]["samples"]
    assert 0 < s < d
    cycles = {row[0] for row in sparse.occupancy_series}
    assert all(c % 4 == 0 for c in cycles)


def test_fast_engine_rejected():
    topo = Hypercube(3)
    alg = HypercubeAdaptiveRouting(topo)
    model = StaticInjection(1, RandomTraffic(topo), make_rng(0))
    with pytest.raises(ValueError, match="fast engine"):
        build_simulator(alg, model, engine="fast", telemetry=True)


def test_auto_engine_with_telemetry_is_compiled():
    from repro.sim import CompiledPacketSimulator

    topo = Hypercube(3)
    alg = HypercubeAdaptiveRouting(topo)
    model = StaticInjection(1, RandomTraffic(topo), make_rng(0))
    sim = build_simulator(alg, model, engine="auto", telemetry=True)
    assert isinstance(sim, CompiledPacketSimulator)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


def test_prometheus_text_format():
    probe, _ = run_probe()
    text = prometheus_text(probe.registry)
    assert "# TYPE repro_packets_delivered_total counter" in text
    assert "# TYPE repro_latency_cycles histogram" in text
    assert 'repro_hops_total{link_type="static"}' in text
    assert 'repro_latency_cycles_bucket{le="+Inf"}' in text
    assert "repro_latency_cycles_count" in text
    # one TYPE header per metric name
    types = [ln for ln in text.splitlines() if ln.startswith("# TYPE")]
    assert len(types) == len({t.split()[2] for t in types})


def test_occupancy_csv_shape():
    probe, result = run_probe()
    rows = list(csv.reader(io.StringIO(occupancy_csv(probe.occupancy_series))))
    assert rows[0] == ["cycle", "node", "kind", "occupancy"]
    assert len(rows) - 1 == len(probe.occupancy_series)
    assert all(len(r) == 4 for r in rows)


def test_summary_json_strict():
    probe, _ = run_probe(probe=TelemetryProbe(events=False, series=False))
    data = json.loads(summary_json(probe.summary))
    assert data["schema"] == 1
    # NaN-free by construction: json.loads with default parse succeeds
    assert data["events"] is None


def test_write_artifacts(tmp_path):
    probe, _ = run_probe()
    paths = write_artifacts(probe, tmp_path, prefix="x-")
    assert set(paths) == {"events", "metrics", "occupancy", "summary"}
    for p in paths.values():
        assert p.exists() and p.read_text()
    assert (tmp_path / "x-events.jsonl").exists()

    lean, _ = run_probe(probe=TelemetryProbe(events=False, series=False))
    paths = write_artifacts(lean, tmp_path / "lean")
    assert set(paths) == {"metrics", "summary"}


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------


def test_queue_occupancy_snapshot_keys():
    topo = Hypercube(3)
    alg = HypercubeAdaptiveRouting(topo)
    model = StaticInjection(1, RandomTraffic(topo), make_rng(0))
    sim = build_simulator(alg, model, engine="reference")
    sim.injection.setup(sim)
    snap = queue_occupancy_snapshot(sim)
    assert set(snap) == {
        (u, kind) for u in sim.nodes for kind in sim.central[u]
    }
    assert all(v >= 0 for v in snap.values())


def test_wait_graph_empty_when_uncongested():
    topo = Hypercube(3)
    alg = HypercubeAdaptiveRouting(topo)
    model = StaticInjection(1, RandomTraffic(topo), make_rng(0))
    probe = TelemetryProbe()
    sim = build_simulator(alg, model, engine="reference", telemetry=probe)
    sim.injection.setup(sim)
    sim.step()
    g = probe.wait_graph()
    assert g.number_of_edges() == 0
    assert probe.wait_cycle() is None
    assert isinstance(wait_for_graph(sim).number_of_nodes(), int)
