"""Unit tests for the hypercube topology."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology import Hypercube
from repro.topology.hypercube import (
    differing_dimensions,
    flip_bit,
    hamming_distance,
    hamming_weight,
)


def test_num_nodes():
    assert Hypercube(1).num_nodes == 2
    assert Hypercube(4).num_nodes == 16
    assert Hypercube(10).num_nodes == 1024


def test_rejects_bad_dimension():
    with pytest.raises(ValueError):
        Hypercube(0)


def test_nodes_enumeration():
    assert list(Hypercube(2).nodes()) == [0, 1, 2, 3]


def test_neighbors_are_single_bit_flips():
    cube = Hypercube(3)
    assert set(cube.neighbors(0b000)) == {0b001, 0b010, 0b100}
    assert set(cube.neighbors(0b101)) == {0b100, 0b111, 0b001}


def test_degree_equals_dimension():
    for n in range(1, 6):
        cube = Hypercube(n)
        for u in cube.nodes():
            assert len(cube.neighbors(u)) == n


def test_adjacency():
    cube = Hypercube(4)
    assert cube.is_adjacent(0b0000, 0b0001)
    assert cube.is_adjacent(0b1010, 0b0010)
    assert not cube.is_adjacent(0b0000, 0b0011)
    assert not cube.is_adjacent(0b0101, 0b0101)


def test_link_index_is_dimension():
    cube = Hypercube(4)
    assert cube.link_index(0b0000, 0b0001) == 0
    assert cube.link_index(0b0000, 0b1000) == 3
    assert cube.dimension_of(0b0110, 0b0010) == 2


def test_link_index_rejects_non_neighbors():
    cube = Hypercube(3)
    with pytest.raises(ValueError):
        cube.link_index(0, 3)
    with pytest.raises(ValueError):
        cube.link_index(5, 5)


def test_distance_is_hamming():
    cube = Hypercube(4)
    assert cube.distance(0b0000, 0b1111) == 4
    assert cube.distance(0b1010, 0b1010) == 0
    assert cube.distance(0b1010, 0b1000) == 1


def test_diameter():
    assert Hypercube(5).diameter == 5


def test_level_is_hamming_weight():
    cube = Hypercube(4)
    assert cube.level(0b0000) == 0
    assert cube.level(0b1011) == 3


def test_format_node_msb_first():
    assert Hypercube(4).format_node(0b0101) == "0101"


def test_bits_lsb_first():
    assert Hypercube(4).bits(0b0101) == (1, 0, 1, 0)


def test_validate_passes():
    Hypercube(4).validate()


def test_helper_functions():
    assert flip_bit(0b0101, 1) == 0b0111
    assert hamming_weight(0b1011) == 3
    assert hamming_distance(0b1100, 0b1010) == 2
    assert differing_dimensions(0b1100, 0b1010, 4) == (1, 2)


@given(st.integers(2, 7), st.data())
def test_neighbors_symmetric(n, data):
    cube = Hypercube(n)
    u = data.draw(st.integers(0, cube.num_nodes - 1))
    for v in cube.neighbors(u):
        assert u in cube.neighbors(v)
        assert cube.distance(u, v) == 1


@given(st.integers(2, 7), st.data())
def test_distance_triangle_inequality(n, data):
    cube = Hypercube(n)
    draw = lambda: data.draw(st.integers(0, cube.num_nodes - 1))
    a, b, c = draw(), draw(), draw()
    assert cube.distance(a, c) <= cube.distance(a, b) + cube.distance(b, c)
    assert cube.distance(a, b) == cube.distance(b, a)


@given(st.integers(1, 7), st.data())
def test_flip_bit_involution(n, data):
    cube = Hypercube(n)
    u = data.draw(st.integers(0, cube.num_nodes - 1))
    i = data.draw(st.integers(0, n - 1))
    assert flip_bit(flip_bit(u, i), i) == u
