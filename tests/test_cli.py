"""Tests for the command-line interface."""

import pytest

from repro.cli import _build_algorithm, _parse_ns, build_parser, main


def test_parse_ns():
    assert _parse_ns("6,8") == (6, 8)
    assert _parse_ns("6 8") == (6, 8)
    assert _parse_ns(None) is None
    assert _parse_ns("") is None


def test_build_algorithm_variants():
    assert _build_algorithm("hypercube-adaptive", "3").topology.n == 3
    assert _build_algorithm("mesh-adaptive", "3x3").topology.rows == 3
    assert _build_algorithm("torus", "3x4").topology.shape == (3, 4)
    assert _build_algorithm("shuffle-exchange", "3").topology.n == 3
    assert _build_algorithm("buffer-pool", "3").levels == 4
    with pytest.raises(SystemExit):
        _build_algorithm("nope", "3")


def test_cli_table(capsys):
    assert main(["table", "2", "--ns", "3,4"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out and "7.00" in out and "9.00" in out


def test_cli_table_without_reference(capsys):
    main(["table", "2", "--ns", "3", "--no-reference"])
    out = capsys.readouterr().out
    assert "paper" not in out


def test_cli_figure_text(capsys):
    assert main(["figure", "4"]) == 0
    assert "0101" in capsys.readouterr().out


def test_cli_figure_dot(capsys):
    assert main(["figure", "1", "--dot"]) == 0
    assert "digraph" in capsys.readouterr().out


def test_cli_verify_ok(capsys):
    assert main(["verify", "hypercube-adaptive", "3"]) == 0
    assert "ok" in capsys.readouterr().out


def test_cli_verify_fast(capsys):
    assert main(["verify", "torus", "3x3", "--fast"]) == 0


def test_cli_sweep(capsys):
    assert main(["sweep", "--n", "4", "--rates", "0.2,1.0"]) == 0
    out = capsys.readouterr().out
    assert "lambda" in out and "L_avg" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cli_report_to_file(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_NS", "3")
    out = tmp_path / "report.md"
    assert main(["report", "--no-figures", "-o", str(out), "--seed", "1"]) == 0
    text = out.read_text()
    assert "# Reproduction report" in text
    assert "Table 2" in text and "Other topologies" in text
    assert "written" in capsys.readouterr().out


def test_cli_faults_sweep(capsys):
    assert main(["faults", "--family", "hypercube", "--size", "3",
                 "--counts", "0,2", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "failed_links" in out and "delivered_of_deliverable" in out
    assert "reroute_overhead" in out


def test_cli_faults_verify(capsys):
    assert main(["faults", "--family", "hypercube", "--size", "3",
                 "--counts", "0,1", "--seed", "7", "--verify"]) == 0
    out = capsys.readouterr().out
    assert "verify under faults" in out.lower()


def test_cli_sweep_telemetry(capsys):
    assert main(["sweep", "--n", "3", "--rates", "0.3", "--telemetry"]) == 0
    out = capsys.readouterr().out
    assert "link_util" in out and "dyn_hops(%)" in out


def test_cli_telemetry_artifacts(tmp_path, capsys):
    out = tmp_path / "tele"
    assert main(["telemetry", "--n", "3", "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "byte-identical across engines: yes" in text
    for engine in ("reference", "compiled"):
        for name in ("events.jsonl", "metrics.prom",
                     "occupancy.csv", "summary.json"):
            assert (out / f"{engine}-{name}").read_text()
    prom = (out / "reference-metrics.prom").read_text()
    assert "repro_packets_delivered_total" in prom
    assert (out / "reference-occupancy.csv").read_text().startswith(
        "cycle,node,kind,occupancy"
    )


@pytest.mark.parametrize(
    "argv",
    [
        ["table", "2", "--ns", "3", "--workers", "0"],
        ["table", "2", "--ns", "3", "--workers", "-2"],
        ["faults", "--size", "3", "--workers", "0"],
        ["telemetry", "--shards", "0"],
        ["telemetry", "--shards", "-1"],
        ["telemetry", "--shards", "two"],
    ],
)
def test_cli_rejects_nonpositive_worker_counts(argv, capsys):
    """--workers/--shards must be >= 1; argparse exits 2 otherwise."""
    with pytest.raises(SystemExit) as exc:
        main(argv)
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "positive integer" in err or "not an integer" in err


def test_cli_telemetry_sharded_engine(tmp_path, capsys):
    out = tmp_path / "tele"
    assert main(["telemetry", "--n", "3", "--engine", "sharded",
                 "--shards", "2", "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "[sharded]" in text
    assert (out / "sharded-events.jsonl").read_text()
    prom = (out / "sharded-metrics.prom").read_text()
    assert "repro_shard_count" in prom


def test_cli_telemetry_single_engine_with_faults(tmp_path, capsys):
    out = tmp_path / "tele"
    assert main(["telemetry", "--n", "3", "--engine", "compiled",
                 "--faults", "2", "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "byte-identical" not in text
    assert (out / "compiled-summary.json").exists()
    assert not (out / "reference-summary.json").exists()


def test_cli_lint_single_target(capsys):
    assert main(["lint", "torus", "--no-determinism"]) == 0
    out = capsys.readouterr().out
    assert "[ok ]" in out and "gate PASS" in out


def test_cli_lint_expected_failure_keeps_gate_green(capsys):
    assert main(["lint", "unrestricted-torus", "--no-determinism"]) == 0
    out = capsys.readouterr().out
    assert "forced-wait" in out and "gate PASS" in out


def test_cli_lint_all(capsys):
    assert main(["lint", "--all"]) == 0
    out = capsys.readouterr().out
    assert "unrestricted-torus" in out
    assert "wh-hypercube-hung-escape" in out
    assert "faults-hypercube-epoch0" in out
    assert "gate PASS" in out


def test_cli_lint_json(capsys):
    import json

    assert main(["lint", "torus", "--json", "--no-determinism"]) == 0
    out = capsys.readouterr().out
    doc = json.loads(out[out.index("{"): out.rindex("}") + 1])
    assert doc["schema"] == "repro-static-analysis/1"
    assert doc["gate_ok"] is True


def test_cli_lint_sarif(tmp_path, capsys):
    import json

    sarif = tmp_path / "out.sarif"
    assert main(
        ["lint", "unrestricted-torus", "--sarif", str(sarif),
         "--no-determinism"]
    ) == 0
    doc = json.loads(sarif.read_text())
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"]


def test_cli_lint_unknown_target():
    with pytest.raises(SystemExit):
        main(["lint", "no-such-target"])


def test_cli_lint_graph_existence(tmp_path, capsys):
    edges = tmp_path / "ring.edges"
    edges.write_text("a b\nb c\nc a\n")
    assert main(["lint", "--graph", str(edges)]) == 0
    out = capsys.readouterr().out
    assert "minimum: 2" in out
    assert main(["lint", "--graph", str(edges), "--classes", "1"]) == 1


def test_cli_lint_graph_synthesize(tmp_path, capsys):
    edges = tmp_path / "ring.edges"
    edges.write_text("a b\nb c\nc a\n")
    assert main(["lint", "--graph", str(edges), "--synthesize"]) == 0
    out = capsys.readouterr().out
    assert "synthesized scheme" in out and "static-DAG=ok" in out


# ----------------------------------------------------------------------
# repro serve (docs/SERVING.md)
# ----------------------------------------------------------------------
SERVE_YAML = """
name: cli-serve
seed: 5
topology: {family: hypercube, size: 3}
populations:
  - name: p
    qos: gold
    users: {mean: 20}
    rate_per_user: 0.02
service:
  duration_cycles: 150
  tick_cycles: 25
"""


def _scenario_file(tmp_path, text=SERVE_YAML):
    pytest.importorskip("yaml")
    path = tmp_path / "scenario.yaml"
    path.write_text(text)
    return str(path)


def test_cli_serve_validate_only(tmp_path, capsys):
    assert main(["serve", _scenario_file(tmp_path), "--validate"]) == 0
    out = capsys.readouterr().out
    assert "scenario ok" in out and "cli-serve" in out


def test_cli_serve_validate_rejects_bad_scenario(tmp_path, capsys):
    bad = SERVE_YAML.replace("rate_per_user: 0.02", "rate_per_user: -1")
    assert main(["serve", _scenario_file(tmp_path, bad), "--validate"]) == 2
    err = capsys.readouterr().err
    assert "populations[0].rate_per_user" in err


def test_cli_serve_missing_file(tmp_path, capsys):
    pytest.importorskip("yaml")
    assert main(["serve", str(tmp_path / "nope.yaml")]) == 2
    assert "not found" in capsys.readouterr().err


def test_cli_serve_runs_and_records(tmp_path, capsys):
    out_dir = tmp_path / "artifacts"
    rc = main([
        "serve", _scenario_file(tmp_path),
        "--record", str(out_dir), "--duration", "100",
    ])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "drained at cycle" in out
    assert (out_dir / "events.jsonl").exists()
    assert (out_dir / "metrics.prom").exists()


def test_cli_serve_refuses_sharded_engine(tmp_path, capsys):
    rc = main(["serve", _scenario_file(tmp_path), "--engine", "sharded"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "cannot serve" in err and "SHARDING" in err
