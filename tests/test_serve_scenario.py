"""Scenario schema validation (`repro.serve.scenario`).

Every rejection must name the offending YAML path — operators fix
scenarios from the error message alone, so the path is the contract.
"""

from __future__ import annotations

import pytest

from repro.serve.scenario import (
    ADMISSION_POLICIES,
    SERVE_ENGINES,
    LoadShape,
    Scenario,
    ScenarioError,
    load_scenario,
    parse_scenario,
)


def base_raw(**overrides) -> dict:
    raw = {
        "name": "t",
        "seed": 1,
        "topology": {"family": "hypercube", "size": 3},
        "populations": [
            {
                "name": "p",
                "users": {"mean": 10},
                "rate_per_user": 0.01,
            }
        ],
    }
    raw.update(overrides)
    return raw


def rejects(raw, path_fragment: str):
    with pytest.raises(ScenarioError) as exc:
        parse_scenario(raw)
    assert path_fragment in str(exc.value), str(exc.value)
    return str(exc.value)


# ----------------------------------------------------------------------
# Errors name the offending YAML path (the ISSUE's three named cases)
# ----------------------------------------------------------------------
def test_unknown_field_named():
    raw = base_raw()
    raw["populations"][0]["ratee_per_user"] = 0.01
    msg = rejects(raw, "scenario.populations[0]")
    assert "ratee_per_user" in msg
    assert "rate_per_user" in msg  # the expected-fields hint


def test_unknown_top_level_field_named():
    msg = rejects(base_raw(typo_field=1), "scenario")
    assert "typo_field" in msg


def test_bad_distribution_named():
    raw = base_raw()
    raw["populations"][0]["users"] = {"mean": 10, "distribution": "zipf"}
    msg = rejects(raw, "scenario.populations[0].users.distribution")
    assert "zipf" in msg


def test_negative_rate_named():
    raw = base_raw()
    raw["populations"][0]["rate_per_user"] = -0.5
    rejects(raw, "scenario.populations[0].rate_per_user")


def test_zero_rate_rejected_strictly():
    raw = base_raw()
    raw["populations"][0]["rate_per_user"] = 0
    rejects(raw, "scenario.populations[0].rate_per_user")


# ----------------------------------------------------------------------
# More rejections
# ----------------------------------------------------------------------
def test_poisson_rejects_explicit_variance():
    raw = base_raw()
    raw["populations"][0]["users"] = {
        "mean": 10, "distribution": "poisson", "variance": 4,
    }
    rejects(raw, "users.variance")


def test_missing_required_fields_named():
    rejects({"seed": 1}, "scenario.name")
    raw = base_raw()
    del raw["populations"][0]["users"]
    rejects(raw, "populations[0].users")
    raw = base_raw(topology={"family": "mesh"})
    rejects(raw, "scenario.topology.size")


def test_duplicate_population_names_rejected():
    raw = base_raw()
    raw["populations"] = [raw["populations"][0], dict(raw["populations"][0])]
    rejects(raw, "populations[1].name")


def test_bad_engine_and_policy_rejected():
    rejects(base_raw(engine="sharded"), "scenario.engine")
    rejects(base_raw(engine="warp"), "scenario.engine")
    raw = base_raw(service={"admission": {"policy": "lifo"}})
    rejects(raw, "service.admission.policy")


def test_pattern_family_mismatch_named():
    raw = base_raw(topology={"family": "mesh", "size": 3})
    raw["populations"][0]["pattern"] = "complement"
    msg = rejects(raw, "populations[0].pattern")
    assert "hypercube" in msg


def test_bursty_burst_longer_than_period_rejected():
    raw = base_raw()
    raw["populations"][0]["load_shape"] = {
        "kind": "bursty", "period": 10, "burst_cycles": 20,
    }
    rejects(raw, "load_shape.burst_cycles")


def test_diurnal_amplitude_capped():
    raw = base_raw()
    raw["populations"][0]["load_shape"] = {
        "kind": "diurnal", "amplitude": 1.5,
    }
    rejects(raw, "load_shape.amplitude")


def test_load_shape_kind_specific_fields_enforced():
    raw = base_raw()
    raw["populations"][0]["load_shape"] = {
        "kind": "diurnal", "multiplier": 2,
    }
    rejects(raw, "load_shape")


# ----------------------------------------------------------------------
# Acceptance
# ----------------------------------------------------------------------
def test_defaults_fill_in():
    s = parse_scenario(base_raw())
    assert isinstance(s, Scenario)
    assert s.engine == "auto" and s.engine in SERVE_ENGINES
    assert s.algorithm == "adaptive"
    assert s.service.admission.policy in ADMISSION_POLICIES
    assert s.populations[0].qos == "default"
    assert s.populations[0].users.distribution == "poisson"
    assert "hypercube" in s.describe()


@pytest.mark.parametrize(
    "family,size",
    [("hypercube", "3"), ("mesh", "4"), ("torus", "3x3"),
     ("shuffle-exchange", "3")],
)
def test_every_family_builds(family, size):
    s = parse_scenario(
        base_raw(topology={"family": family, "size": size})
    )
    topo = s.build_topology()
    alg = s.build_algorithm(topo)
    assert alg.topology is topo


def test_load_shape_multipliers():
    diurnal = LoadShape(kind="diurnal", period=100, amplitude=0.5)
    assert diurnal.multiplier_at(0) == pytest.approx(1.0)
    assert diurnal.multiplier_at(25) == pytest.approx(1.5)
    assert diurnal.multiplier_at(75) == pytest.approx(0.5)
    bursty = LoadShape(kind="bursty", period=100, multiplier=4.0,
                       burst_cycles=10)
    assert bursty.multiplier_at(5) == 4.0
    assert bursty.multiplier_at(50) == 1.0
    assert LoadShape().multiplier_at(123) == 1.0


def test_yaml_text_and_mapping_agree():
    yaml = pytest.importorskip("yaml")  # noqa: F841 (gate on PyYAML)
    text = """
name: t
topology: {family: hypercube, size: 3}
populations:
  - name: p
    users: {mean: 10}
    rate_per_user: 0.01
"""
    assert load_scenario(text) == load_scenario(base_raw(seed=12345))


def test_yaml_path_not_found():
    pytest.importorskip("yaml")
    with pytest.raises(ScenarioError, match="not found"):
        load_scenario("no/such/scenario.yaml")


def test_example_scenarios_validate():
    pytest.importorskip("yaml")
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent / "examples" / "scenarios"
    found = sorted(root.glob("*.yaml"))
    assert found, "examples/scenarios/ should ship scenarios"
    for path in found:
        s = load_scenario(path)
        assert s.engine in SERVE_ENGINES
