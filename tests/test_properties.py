"""Cross-cutting property-based tests (hypothesis).

These check the paper's invariants on randomly drawn instances and
message populations rather than hand-picked cases:

* greedy walks always terminate at the destination, minimally for the
  minimal algorithms;
* the simulator conserves messages and never beats the 2h+1 latency
  law;
* explored QDG static subgraphs are DAGs for every algorithm and size;
* shuffle-exchange schedules always land on the destination.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import build_qdg, is_acyclic, node_path
from repro.routing import (
    HypercubeAdaptiveRouting,
    Mesh2DAdaptiveRouting,
    ShuffleExchangeRouting,
    TorusRouting,
)
from repro.sim import (
    DynamicInjection,
    PacketSimulator,
    RandomTraffic,
    StaticInjection,
    make_rng,
)
from repro.topology import Hypercube, Mesh2D, ShuffleExchange, Torus

COMMON = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@settings(max_examples=25, **COMMON)
@given(
    n=st.integers(2, 5),
    packets=st.integers(1, 3),
    seed=st.integers(0, 10_000),
    capacity=st.integers(1, 5),
)
def test_simulator_conserves_and_delivers_hypercube(n, packets, seed, capacity):
    cube = Hypercube(n)
    alg = HypercubeAdaptiveRouting(cube)
    inj = StaticInjection(packets, RandomTraffic(cube), make_rng(seed))
    sim = PacketSimulator(alg, inj, central_capacity=capacity, stall_limit=2000)
    res = sim.run(max_cycles=200_000)
    assert res.delivered == res.injected == packets * cube.num_nodes
    # Latency law: every message needs at least 2*1+1 cycles.
    assert res.latency.minimum >= 3
    # And no more than the drain-time upper bound.
    assert res.l_max <= res.cycles


@settings(max_examples=20, **COMMON)
@given(
    rows=st.integers(2, 4),
    cols=st.integers(2, 4),
    seed=st.integers(0, 10_000),
)
def test_simulator_delivers_mesh(rows, cols, seed):
    mesh = Mesh2D(rows, cols)
    alg = Mesh2DAdaptiveRouting(mesh)
    inj = StaticInjection(2, RandomTraffic(mesh), make_rng(seed))
    res = PacketSimulator(alg, inj, stall_limit=2000).run(max_cycles=100_000)
    assert res.delivered == res.injected


@settings(max_examples=10, **COMMON)
@given(seed=st.integers(0, 10_000), rate=st.floats(0.05, 1.0))
def test_dynamic_injection_rate_bounds(seed, rate):
    cube = Hypercube(3)
    alg = HypercubeAdaptiveRouting(cube)
    inj = DynamicInjection(
        rate, RandomTraffic(cube), make_rng(seed), duration=120, warmup=30
    )
    res = PacketSimulator(alg, inj).run()
    assert 0.0 <= res.injection_rate <= 1.0
    assert res.delivered <= res.injected


@settings(max_examples=15, **COMMON)
@given(n=st.integers(2, 4))
def test_static_qdg_always_dag_hypercube(n):
    alg = HypercubeAdaptiveRouting(Hypercube(n))
    assert is_acyclic(build_qdg(alg, include_dynamic=False))


@settings(max_examples=10, **COMMON)
@given(shape=st.tuples(st.integers(3, 5), st.integers(3, 5)))
def test_static_qdg_always_dag_torus(shape):
    alg = TorusRouting(Torus(shape))
    assert is_acyclic(build_qdg(alg, include_dynamic=False))


@settings(max_examples=30, **COMMON)
@given(n=st.integers(3, 6), data=st.data())
def test_shuffle_exchange_walk_length_bound(n, data):
    se = ShuffleExchange(n)
    alg = ShuffleExchangeRouting(se)
    src = data.draw(st.integers(0, se.num_nodes - 1))
    dst = data.draw(st.integers(0, se.num_nodes - 1))
    if src == dst:
        return
    path = alg.walk(src, dst)
    physical_hops = sum(
        1 for a, b in zip(path, path[1:]) if a.node != b.node
    )
    assert physical_hops <= 3 * n
    assert node_path(path)[-1] == dst


@settings(max_examples=30, **COMMON)
@given(
    shape=st.sampled_from([(3, 3), (3, 4), (5, 5), (4, 4), (3, 3, 3)]),
    data=st.data(),
)
def test_torus_walk_minimality(shape, data):
    t = Torus(shape)
    alg = TorusRouting(t)
    nodes_all = list(t.nodes())
    src = data.draw(st.sampled_from(nodes_all))
    dst = data.draw(st.sampled_from(nodes_all))
    if src == dst:
        return
    nodes = node_path(alg.walk(src, dst))
    assert len(nodes) - 1 == t.distance(src, dst)


@settings(max_examples=25, **COMMON)
@given(
    n=st.integers(2, 5),
    seed=st.integers(0, 100),
    choose_seed=st.integers(0, 100),
)
def test_random_walk_policy_still_minimal(n, seed, choose_seed):
    """Minimality holds for ANY hop-selection policy, not just the
    deterministic one (full adaptivity means the adversary can pick)."""
    import numpy as np

    cube = Hypercube(n)
    alg = HypercubeAdaptiveRouting(cube)
    rng = np.random.default_rng(choose_seed)
    pick = lambda cands: cands[int(rng.integers(len(cands)))]
    r2 = np.random.default_rng(seed)
    src = int(r2.integers(cube.num_nodes))
    dst = int(r2.integers(cube.num_nodes))
    if src == dst:
        return
    nodes = node_path(alg.walk(src, dst, choose=pick))
    assert len(nodes) - 1 == cube.distance(src, dst)
