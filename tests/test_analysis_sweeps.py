"""Tests for load sweeps and saturation analysis."""

import pytest

from repro.analysis import LoadPoint, knee_load, load_sweep, saturation_throughput
from repro.routing import HypercubeAdaptiveRouting
from repro.sim import RandomTraffic, hypercube_pattern, make_rng
from repro.topology import Hypercube


@pytest.fixture(scope="module")
def sweep():
    cube = Hypercube(4)
    return load_sweep(
        lambda: HypercubeAdaptiveRouting(cube),
        lambda: RandomTraffic(cube),
        rates=(0.1, 0.5, 1.0),
        duration=150,
        warmup=50,
        seed=3,
    )


def test_sweep_shape(sweep):
    assert [p.offered for p in sweep] == [0.1, 0.5, 1.0]
    for p in sweep:
        assert 0 <= p.accepted <= p.offered + 1e-9
        assert p.l_avg >= 3.0  # latency law floor


def test_latency_monotone_in_load(sweep):
    assert sweep[0].l_avg <= sweep[-1].l_avg + 0.5


def test_saturation_throughput(sweep):
    assert saturation_throughput(sweep) == max(p.accepted for p in sweep)


def test_knee_load():
    pts = [
        LoadPoint(0.1, 0.1, 5.0, 8, 10),
        LoadPoint(0.5, 0.5, 7.0, 12, 50),
        LoadPoint(1.0, 0.8, 15.0, 40, 80),
    ]
    assert knee_load(pts, factor=2.0) == 1.0
    assert knee_load(pts, factor=1.2) == 0.5
    with pytest.raises(ValueError):
        knee_load([])


def test_point_row():
    p = LoadPoint(0.5, 0.45, 7.123, 12, 50)
    row = p.row()
    assert row["lambda"] == 0.5 and row["L_avg"] == 7.12


def test_sweep_deterministic():
    cube = Hypercube(3)
    mk = lambda: load_sweep(
        lambda: HypercubeAdaptiveRouting(cube),
        lambda: hypercube_pattern("complement", cube, make_rng(0)),
        rates=(0.5,),
        duration=100,
        warmup=20,
        seed=5,
    )
    a, b = mk(), mk()
    assert a[0].l_avg == b[0].l_avg
