"""Unit tests for the telemetry metric registry."""

import math

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NULL_METRIC,
)


def test_counter_inc():
    c = Counter("x")
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_counter_rejects_negative():
    c = Counter("x")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set():
    g = Gauge("x")
    g.set(2.5)
    assert g.value == 2.5
    g.set(-1)
    assert g.value == -1


def test_histogram_buckets_and_stats():
    h = Histogram("x", buckets=(1, 5, 10))
    for v in (0, 1, 2, 7, 50):
        h.observe(v)
    assert h.count == 5
    assert h.sum == 60
    assert h.min == 0 and h.max == 50
    assert h.mean == 12.0
    # per-bucket counts: <=1: 2, <=5: 1, <=10: 1, +Inf overflow: 1
    assert h.counts == [2, 1, 1, 1]
    assert h.cumulative() == [(1, 2), (5, 3), (10, 4), (float("inf"), 5)]


def test_histogram_empty():
    h = Histogram("x", buckets=(1,))
    assert h.count == 0
    assert math.isnan(h.mean)
    assert h.min is None and h.max is None
    assert h.snapshot()["count"] == 0


def test_histogram_requires_buckets():
    with pytest.raises(ValueError):
        Histogram("x", buckets=())


def test_null_metric_is_noop():
    NULL_METRIC.inc()
    NULL_METRIC.inc(7)
    NULL_METRIC.set(3)
    NULL_METRIC.observe(9)
    assert NULL_METRIC.value == 0
    assert NULL_METRIC.count == 0


def test_registry_returns_same_instance():
    reg = MetricRegistry()
    a = reg.counter("hits")
    b = reg.counter("hits")
    assert a is b


def test_registry_rejects_type_change():
    reg = MetricRegistry()
    reg.counter("hits")
    with pytest.raises(TypeError):
        reg.gauge("hits")


def test_registry_labels_are_separate_series():
    reg = MetricRegistry()
    a = reg.counter("hops", {"link_type": "static"})
    b = reg.counter("hops", {"link_type": "dynamic"})
    assert a is not b
    a.inc(3)
    b.inc(1)
    snap = reg.snapshot()
    assert snap["hops{link_type=static}"]["value"] == 3
    assert snap["hops{link_type=dynamic}"]["value"] == 1


def test_registry_label_order_canonical():
    reg = MetricRegistry()
    a = reg.counter("m", {"b": "2", "a": "1"})
    b = reg.counter("m", {"a": "1", "b": "2"})
    assert a is b


def test_disabled_registry_is_noop():
    reg = MetricRegistry(enabled=False)
    c = reg.counter("hits")
    assert c is NULL_METRIC
    c.inc(100)
    assert reg.histogram("lat") is NULL_METRIC
    assert reg.gauge("g") is NULL_METRIC
    assert reg.snapshot() == {}
    assert list(reg) == []
    assert len(reg) == 0


def test_registry_iteration_sorted():
    reg = MetricRegistry()
    reg.counter("z_metric")
    reg.gauge("a_metric")
    reg.counter("m_metric", {"x": "1"})
    names = [m.name for m in reg]
    assert names == sorted(names)
