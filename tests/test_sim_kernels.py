"""Integer hop kernels: row equivalence and saturated-traffic identity.

Two layers of guarantees for ``compile_hops()`` (the integer-kernel
compilation hook, ``docs/ARCHITECTURE.md``):

* **Row equivalence** — for every shipped algorithm, the kernel-built
  :class:`~repro.sim.tables.RoutingTables` rows must be *identical* to
  the symbolic ``RoutingPlanCache`` translation (``use_kernel=False``)
  over random ``(queue, destination, state)`` triples — including keys
  whose symbolic evaluation raises (declined keys fall back to the
  symbolic path, so exception type and message match too).
* **Saturated identity** — at ``lambda = 1`` the batched vector node
  cycle (fill sweep + lexsort read admission forced on) must produce
  byte-identical canonical event logs and equal latency multisets
  against the reference engine on all five topology families, and the
  batch/sparse dispatch itself must be output-invariant.
"""

import zlib

import numpy as np
import pytest

from repro.core.message import reset_message_ids
from repro.faults import FaultAwareRouting
from repro.routing import (
    BenesAdaptiveRouting,
    BenesObliviousRouting,
    CCCAdaptiveRouting,
    HypercubeAdaptiveRouting,
    HypercubeHungRouting,
    MeshAdaptiveRouting,
    ShuffleExchangeRouting,
    StructuredBufferPoolRouting,
    TorusRouting,
)
from repro.sim import (
    DynamicInjection,
    PacketSimulator,
    RandomTraffic,
    RoutingTables,
    VectorSimulator,
    make_rng,
)
from repro.telemetry import TelemetryProbe
from repro.topology import (
    BenesNetwork,
    CubeConnectedCycles,
    Hypercube,
    Mesh,
    ShuffleExchange,
    Torus,
)

# ----------------------------------------------------------------------
# Row equivalence: kernel vs symbolic plan-cache translation
# ----------------------------------------------------------------------
KERNEL_ALGS = {
    "hypercube-adaptive": lambda: HypercubeAdaptiveRouting(Hypercube(4)),
    "hypercube-hung": lambda: HypercubeHungRouting(Hypercube(4)),
    "mesh": lambda: MeshAdaptiveRouting(Mesh((4, 4))),
    "torus": lambda: TorusRouting(Torus((4, 4))),
    "shuffle-adaptive": lambda: ShuffleExchangeRouting(ShuffleExchange(3)),
    "shuffle-static": lambda: ShuffleExchangeRouting(
        ShuffleExchange(4), adaptive=False
    ),
    "ccc": lambda: CCCAdaptiveRouting(CubeConnectedCycles(3)),
    "benes-adaptive": lambda: BenesAdaptiveRouting(BenesNetwork(2)),
    "benes-oblivious": lambda: BenesObliviousRouting(BenesNetwork(2)),
    "buffer-pool": lambda: StructuredBufferPoolRouting(Hypercube(3)),
    "fault-adapter": lambda: FaultAwareRouting(
        HypercubeAdaptiveRouting(Hypercube(3))
    ),
}


def _call(fn, *args):
    """Outcome wrapper so raising keys compare by type + message."""
    try:
        return ("ok", fn(*args))
    except Exception as exc:  # noqa: BLE001 - equivalence includes errors
        return ("err", type(exc).__name__, str(exc))


def _seed_states(alg, tabs):
    """Intern the same states in the same order into every table.

    Initial states for a spread of (src, dst) pairs, plus — for the
    shuffle-exchange scheme, whose state is the shuffle count — every
    count a message can carry (including the exhausted ones, which the
    kernel declines back to the symbolic error path).
    """
    nodes = tabs[0].nodes
    step = max(1, len(nodes) // 7)
    for src in nodes[::step]:
        for dst in nodes[:: step + 1]:
            state = alg.initial_state(src, dst)
            for tab in tabs:
                tab.state_id(state)
    if isinstance(alg, ShuffleExchangeRouting):
        for k in range(2 * alg.n + 2):
            for tab in tabs:
                tab.state_id(k)


@pytest.mark.parametrize("name", sorted(KERNEL_ALGS))
def test_kernel_rows_match_plan_cache(name):
    alg = KERNEL_ALGS[name]()
    kern = RoutingTables(alg)
    fall = RoutingTables(alg, use_kernel=False)
    assert kern.kernel is not None, f"{name}: compile_hops declined"
    assert fall.kernel is None
    _seed_states(alg, (kern, fall))
    assert kern.states == fall.states

    rng = np.random.default_rng(zlib.crc32(name.encode()))
    n_q = kern.n_queues
    n_nodes = len(kern.nodes)
    n_states = len(kern.states)
    for _ in range(250):
        qid = int(rng.integers(n_q))
        dst = int(rng.integers(n_nodes))
        sid = int(rng.integers(n_states))
        assert _call(kern.central_row, qid, dst, sid) == _call(
            fall.central_row, qid, dst, sid
        ), (name, "central", qid, dst, sid)
        assert _call(kern.entry_row, qid, dst, sid) == _call(
            fall.entry_row, qid, dst, sid
        ), (name, "entry", qid, dst, sid)
        ui = int(rng.integers(n_nodes))
        assert _call(kern.injection_row, ui, dst, sid) == _call(
            fall.injection_row, ui, dst, sid
        ), (name, "inject", ui, dst, sid)


def test_packed_rid_rows_match_row_tuples():
    """central_rid's packed arrays re-encode central_row faithfully."""
    alg = HypercubeAdaptiveRouting(Hypercube(4))
    tab = RoutingTables(alg)
    rng = np.random.default_rng(7)
    pad = tab.n_slots
    for _ in range(200):
        qid = int(rng.integers(tab.n_queues))
        dst = int(rng.integers(len(tab.nodes)))
        rid = tab.central_rid(qid, dst, 0)
        ext, tqs, sts, dyn, internal = tab.central_row(qid, dst, 0)
        width = len(tab.row_slots[rid])
        assert tuple(tab.row_slots[rid][: len(ext)]) == ext
        assert all(s == pad for s in tab.row_slots[rid][len(ext) :])
        assert tuple(tab.row_queues[rid][: len(tqs)]) == tqs
        assert tuple(tab.row_states[rid][: len(sts)]) == sts
        assert tuple(tab.row_dyn[rid][: len(dyn)]) == dyn
        assert bool(tab.row_hasint[rid]) == bool(internal)
        assert tab.row_internal[rid] == internal
        assert len(ext) <= width


def test_vectorized_rid_gather_matches_scalar():
    """central_rids (batch gather) == central_rid, dense and dict mode."""
    alg = MeshAdaptiveRouting(Mesh((4, 4)))
    tab = RoutingTables(alg)
    rng = np.random.default_rng(11)
    qids = rng.integers(tab.n_queues, size=64)
    dsts = rng.integers(len(tab.nodes), size=64)
    sids = np.zeros(64, dtype=np.int64)
    batch = tab.central_rids(qids, dsts, sids)
    scalar = [
        tab.central_rid(int(q), int(d), 0) for q, d in zip(qids, dsts)
    ]
    assert batch.tolist() == scalar
    # Dict mode: force the non-dense row-id path and re-check.
    tab2 = RoutingTables(alg)
    tab2._rowid_dense = None
    tab2._rowid_map = {}
    batch2 = tab2.central_rids(qids, dsts, sids)
    assert batch2.tolist() == scalar


# ----------------------------------------------------------------------
# Saturated-traffic identity: batched node cycle vs reference engine
# ----------------------------------------------------------------------
TOPOLOGIES = {
    "hypercube": (lambda: Hypercube(4), HypercubeAdaptiveRouting),
    "mesh": (lambda: Mesh((5, 5)), MeshAdaptiveRouting),
    "torus": (lambda: Torus((4, 4)), TorusRouting),
    "shuffle": (lambda: ShuffleExchange(4), ShuffleExchangeRouting),
    "ccc": (lambda: CubeConnectedCycles(3), CCCAdaptiveRouting),
}


def _instrumented_run(key, engine, batch: bool | None = None, seed=11):
    build, alg_cls = TOPOLOGIES[key]
    reset_message_ids()
    topo = build()
    alg = alg_cls(topo)
    model = DynamicInjection(
        1.0, RandomTraffic(topo), make_rng(seed), duration=80
    )
    probe = TelemetryProbe()
    if engine == "reference":
        sim = PacketSimulator(alg, model)
    else:
        sim = VectorSimulator(alg, model)
        if batch is True:  # force the batched fill + read paths
            sim.batch_fill_min = 1
            sim.batch_read_min = 1
        elif batch is False:  # force the sparse per-node paths
            sim.batch_fill_min = 10**9
            sim.batch_read_min = 10**9
    probe.attach(sim)
    result = sim.run(max_cycles=200_000)
    return probe, result


@pytest.mark.parametrize("key", sorted(TOPOLOGIES))
def test_saturated_batched_event_logs_byte_identical(key):
    ref_p, ref_r = _instrumented_run(key, "reference")
    vec_p, vec_r = _instrumented_run(key, "vector", batch=True)
    assert ref_p.log.to_jsonl() == vec_p.log.to_jsonl()
    assert sorted(ref_r.latency.values) == sorted(vec_r.latency.values)
    assert ref_r.cycles == vec_r.cycles
    assert ref_r.injected == vec_r.injected
    assert ref_r.delivered == vec_r.delivered


@pytest.mark.parametrize("key", sorted(TOPOLOGIES))
def test_batch_sparse_dispatch_invariant(key):
    """The hybrid dispatch threshold never changes observable output."""
    a_p, a_r = _instrumented_run(key, "vector", batch=True)
    b_p, b_r = _instrumented_run(key, "vector", batch=False)
    assert a_p.log.to_jsonl() == b_p.log.to_jsonl()
    assert a_r.latency.values == b_r.latency.values or sorted(
        a_r.latency.values
    ) == sorted(b_r.latency.values)
    assert a_r.cycles == b_r.cycles
