"""Cross-validation of the compiled generic engine against the reference.

:class:`CompiledPacketSimulator` must be *packet-for-packet identical*
to :class:`PacketSimulator` on every topology — same latency multiset,
same cycle counts, same injection statistics — for every engine
configuration (FIFO/LIFO service, paper/rotating buffer policy, any
central-queue capacity).  This mirrors ``tests/test_sim_fastcube.py``
but exercises the algorithms the fast engine cannot run: mesh, torus,
shuffle-exchange, and CCC.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.routing import (
    CCCAdaptiveRouting,
    HypercubeAdaptiveRouting,
    Mesh2DAdaptiveRouting,
    MeshAdaptiveRouting,
    ShuffleExchangeRouting,
    TorusRouting,
)
from repro.sim import (
    CompiledPacketSimulator,
    DynamicInjection,
    PacketSimulator,
    RandomTraffic,
    RoutingPlanCache,
    StaticInjection,
    make_rng,
)
from repro.topology import (
    CubeConnectedCycles,
    Hypercube,
    Mesh,
    ShuffleExchange,
    Torus,
)

TOPOLOGIES = {
    "mesh": (lambda: Mesh((5, 5)), MeshAdaptiveRouting),
    "torus": (lambda: Torus((4, 4)), TorusRouting),
    "shuffle": (lambda: ShuffleExchange(4), ShuffleExchangeRouting),
    "hypercube": (lambda: Hypercube(4), HypercubeAdaptiveRouting),
    "ccc": (lambda: CubeConnectedCycles(3), CCCAdaptiveRouting),
}


def run_both(key, make_inj, **kw):
    build, alg_cls = TOPOLOGIES[key]
    topo = build()
    ref = PacketSimulator(alg_cls(topo), make_inj(topo), **kw).run(
        max_cycles=500_000
    )
    topo2 = build()
    compiled = CompiledPacketSimulator(
        alg_cls(topo2), make_inj(topo2), **kw
    ).run(max_cycles=500_000)
    return ref, compiled


def assert_identical(ref, compiled):
    assert sorted(ref.latency.values) == sorted(compiled.latency.values)
    assert ref.cycles == compiled.cycles
    assert ref.injected == compiled.injected
    assert ref.delivered == compiled.delivered
    assert ref.attempts == compiled.attempts
    assert ref.successes == compiled.successes


@pytest.mark.parametrize("key", sorted(TOPOLOGIES))
def test_static_random_identical(key):
    ref, compiled = run_both(
        key, lambda t: StaticInjection(2, RandomTraffic(t), make_rng(0))
    )
    assert_identical(ref, compiled)


@pytest.mark.parametrize("key", sorted(TOPOLOGIES))
def test_dynamic_saturated_identical(key):
    ref, compiled = run_both(
        key,
        lambda t: DynamicInjection(
            1.0, RandomTraffic(t), make_rng(1), duration=200, warmup=50
        ),
    )
    assert_identical(ref, compiled)


@pytest.mark.parametrize("key", ["mesh", "torus", "shuffle"])
def test_lifo_service_identical(key):
    ref, compiled = run_both(
        key,
        lambda t: StaticInjection(4, RandomTraffic(t), make_rng(2)),
        service="lifo",
        central_capacity=2,
    )
    assert_identical(ref, compiled)


@pytest.mark.parametrize("key", ["mesh", "torus", "shuffle"])
def test_rotating_policy_identical(key):
    ref, compiled = run_both(
        key,
        lambda t: DynamicInjection(
            0.7, RandomTraffic(t), make_rng(3), duration=200, warmup=50
        ),
        policy="rotating",
    )
    assert_identical(ref, compiled)


def test_small_capacity_identical():
    ref, compiled = run_both(
        "torus",
        lambda t: StaticInjection(5, RandomTraffic(t), make_rng(4)),
        central_capacity=1,
    )
    assert_identical(ref, compiled)


def test_shared_plan_cache_across_runs():
    """One RoutingPlanCache can back a whole sweep of simulators."""
    build, alg_cls = TOPOLOGIES["mesh"]
    topo = build()
    alg = alg_cls(topo)
    cache = RoutingPlanCache(alg)
    results = []
    for seed in (0, 1):
        inj = StaticInjection(2, RandomTraffic(topo), make_rng(seed))
        sim = CompiledPacketSimulator(alg, inj, plan_cache=cache)
        results.append(sim.run(max_cycles=500_000))
    assert cache.size > 0
    # The second run reuses (and possibly extends) the first run's plans.
    ref = PacketSimulator(
        alg, StaticInjection(2, RandomTraffic(topo), make_rng(1))
    ).run(max_cycles=500_000)
    assert sorted(results[1].latency.values) == sorted(ref.latency.values)


def test_plan_cache_algorithm_mismatch_rejected():
    build, alg_cls = TOPOLOGIES["mesh"]
    topo = build()
    cache = RoutingPlanCache(alg_cls(topo))
    other = alg_cls(build())
    inj = StaticInjection(1, RandomTraffic(topo), make_rng(0))
    with pytest.raises(ValueError):
        CompiledPacketSimulator(other, inj, plan_cache=cache)


def test_engine_env_override(monkeypatch):
    """REPRO_ENGINE selects the engine in the experiment harness."""
    from repro.experiments import HypercubeExperiment, build_simulator
    from repro.sim import FastHypercubeSimulator

    exp = HypercubeExperiment(pattern="random", injection="static", seed=1)
    monkeypatch.setenv("REPRO_ENGINE", "compiled")
    assert type(exp.build(4)) is CompiledPacketSimulator
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    assert type(exp.build(4)) is PacketSimulator
    monkeypatch.setenv("REPRO_ENGINE", "fast")
    assert type(exp.build(4)) is FastHypercubeSimulator
    monkeypatch.setenv("REPRO_ENGINE", "auto")
    assert type(exp.build(4)) is FastHypercubeSimulator
    monkeypatch.setenv("REPRO_ENGINE", "warp")
    with pytest.raises(ValueError):
        exp.build(4)
    monkeypatch.delenv("REPRO_ENGINE")
    # auto + a non-hypercube algorithm -> compiled generic engine.
    topo = Mesh((4, 4))
    sim = build_simulator(
        MeshAdaptiveRouting(topo),
        StaticInjection(1, RandomTraffic(topo), make_rng(0)),
    )
    assert type(sim) is CompiledPacketSimulator


def test_engine_argument_beats_environment(monkeypatch):
    from repro.experiments import HypercubeExperiment

    monkeypatch.setenv("REPRO_ENGINE", "reference")
    exp = HypercubeExperiment(pattern="random", injection="static", seed=1)
    assert type(exp.build(4, engine="compiled")) is CompiledPacketSimulator


def test_auto_with_occupancy_uses_generic_engine():
    from repro.experiments import HypercubeExperiment

    sim = HypercubeExperiment(
        pattern="random", injection="static", seed=1, collect_occupancy=True
    ).build(4)
    assert isinstance(sim, PacketSimulator)
    assert not hasattr(sim, "qA")  # not the fast engine


@settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    key=st.sampled_from(sorted(TOPOLOGIES)),
    packets=st.integers(1, 3),
    seed=st.integers(0, 10_000),
    capacity=st.integers(1, 5),
    service=st.sampled_from(["fifo", "lifo"]),
)
def test_property_identical_static(key, packets, seed, capacity, service):
    ref, compiled = run_both(
        key,
        lambda t: StaticInjection(packets, RandomTraffic(t), make_rng(seed)),
        central_capacity=capacity,
        service=service,
    )
    assert_identical(ref, compiled)


@settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    key=st.sampled_from(["mesh", "torus", "shuffle"]),
    seed=st.integers(0, 10_000),
    rate=st.sampled_from([0.3, 0.7, 1.0]),
    policy=st.sampled_from(["paper", "rotating"]),
)
def test_property_identical_dynamic(key, seed, rate, policy):
    ref, compiled = run_both(
        key,
        lambda t: DynamicInjection(
            rate, RandomTraffic(t), make_rng(seed), duration=120, warmup=30
        ),
        policy=policy,
    )
    assert_identical(ref, compiled)
