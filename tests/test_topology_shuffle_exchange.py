"""Unit tests for the shuffle-exchange topology."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology import ShuffleExchange, cycle_break_node, rol, ror, shuffle_cycle


def test_rotations():
    assert rol(0b001, 3) == 0b010
    assert rol(0b100, 3) == 0b001
    assert ror(0b001, 3) == 0b100
    assert rol(0b1011, 4) == 0b0111


@given(st.integers(2, 8), st.data())
def test_rol_ror_inverse(n, data):
    u = data.draw(st.integers(0, (1 << n) - 1))
    assert ror(rol(u, n), n) == u
    assert rol(ror(u, n), n) == u


@given(st.integers(2, 8), st.data())
def test_rotation_preserves_weight(n, data):
    u = data.draw(st.integers(0, (1 << n) - 1))
    assert bin(rol(u, n)).count("1") == bin(u).count("1")


def test_shuffle_cycles_n3():
    assert shuffle_cycle(0b000, 3) == (0b000,)
    assert set(shuffle_cycle(0b001, 3)) == {0b001, 0b010, 0b100}
    assert set(shuffle_cycle(0b011, 3)) == {0b011, 0b110, 0b101}
    assert shuffle_cycle(0b111, 3) == (0b111,)


def test_cycle_break_node_is_minimum():
    assert cycle_break_node(0b100, 3) == 0b001
    assert cycle_break_node(0b110, 3) == 0b011


def test_neighbors():
    se = ShuffleExchange(3)
    # node 000: shuffle is a self-loop, only the exchange link remains.
    assert set(se.neighbors(0b000)) == {0b001}
    assert set(se.neighbors(0b001)) == {0b000, 0b010}
    assert set(se.neighbors(0b101)) == {0b100, 0b011}


def test_in_neighbors():
    se = ShuffleExchange(3)
    assert set(se.in_neighbors(0b010)) == {0b011, 0b001}
    assert set(se.in_neighbors(0b000)) == {0b001}


def test_link_kinds():
    se = ShuffleExchange(3)
    assert se.is_exchange_link(0b010, 0b011)
    assert se.is_shuffle_link(0b001, 0b010)
    assert not se.is_shuffle_link(0b000, 0b000)
    assert se.link_index(0b010, 0b011) == 0
    assert se.link_index(0b001, 0b010) == 1
    with pytest.raises(ValueError):
        se.link_index(0b000, 0b010)


def test_distance_small():
    se = ShuffleExchange(3)
    assert se.distance(0b000, 0b001) == 1
    assert se.distance(0b001, 0b010) == 1
    assert se.distance(0b000, 0b000) == 0
    # Distances are bounded by ~2n for shuffle-exchange.
    for u in se.nodes():
        for v in se.nodes():
            assert se.distance(u, v) <= 2 * se.n


def test_all_cycles_partition_nodes():
    se = ShuffleExchange(4)
    cycles = se.all_cycles()
    seen = [u for cyc in cycles for u in cyc]
    assert sorted(seen) == list(se.nodes())
    for cyc in cycles:
        assert cyc[0] == min(cyc)  # reported from the break node


def test_cycle_level_constant_within_cycle():
    se = ShuffleExchange(5)
    for cyc in se.all_cycles():
        levels = {se.cycle_level(u) for u in cyc}
        assert len(levels) == 1


def test_rejects_tiny_n():
    with pytest.raises(ValueError):
        ShuffleExchange(1)


def test_validate_passes():
    ShuffleExchange(3).validate()
    ShuffleExchange(4).validate()
