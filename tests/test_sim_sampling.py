"""The shared seeded sampler (`repro.sim.sampling`).

Property tests: the empirical Bernoulli firing rate stays within
statistical tolerance of the configured lambda, user-count draws match
their distribution's mean/variance, and the extraction out of
``DynamicInjection`` changed nothing about the injection stream.
"""

from __future__ import annotations

import math

import pytest

from repro.sim.rng import make_rng
from repro.sim.sampling import (
    USER_DISTRIBUTIONS,
    bernoulli_fires,
    draw_arrivals,
    draw_user_count,
)
from repro.sim.traffic import RandomTraffic
from repro.topology import Hypercube

NODES = tuple(range(64))


# ----------------------------------------------------------------------
# bernoulli_fires
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rate", [0.05, 0.25, 0.5, 0.9])
def test_empirical_rate_matches_lambda(rate):
    """Mean firing fraction over many cycles ~ lambda.

    With N = 64 nodes * 400 cycles = 25600 Bernoulli trials the
    standard error is sqrt(p(1-p)/N) <= 0.0032; a 5-sigma band keeps
    the test deterministic-for-this-seed while still catching any
    systematic bias (e.g. an off-by-one in the threshold compare).
    """
    rng = make_rng(42, f"sampling-{rate}")
    cycles = 400
    fired = sum(len(bernoulli_fires(NODES, rate, rng)) for _ in range(cycles))
    n = len(NODES) * cycles
    se = math.sqrt(rate * (1 - rate) / n)
    assert abs(fired / n - rate) < 5 * se


def test_rate_one_fires_everyone_without_consuming_rng():
    rng = make_rng(0, "sampling-one")
    before = rng.bit_generator.state["state"]["state"]
    assert bernoulli_fires(NODES, 1.0, rng) == NODES
    assert rng.bit_generator.state["state"]["state"] == before


def test_rate_zero_fires_no_one():
    rng = make_rng(0, "sampling-zero")
    assert bernoulli_fires(NODES, 0.0, rng) == ()
    assert bernoulli_fires(NODES, -0.5, rng) == ()


def test_firing_preserves_node_order():
    rng = make_rng(3, "sampling-order")
    fired = bernoulli_fires(NODES, 0.5, rng)
    assert list(fired) == sorted(fired)


# ----------------------------------------------------------------------
# draw_arrivals
# ----------------------------------------------------------------------
def test_draw_arrivals_filters_fixed_points_and_tags_sources():
    cube = Hypercube(4)
    nodes = list(cube.nodes())
    rng = make_rng(9, "arrivals")
    pattern = RandomTraffic(cube)
    seen = 0
    for _ in range(200):
        for src, dst in draw_arrivals(nodes, 0.3, pattern, rng):
            assert src != dst
            seen += 1
    assert seen > 0


def test_draw_arrivals_empirical_rate():
    cube = Hypercube(4)
    nodes = list(cube.nodes())
    rng = make_rng(5, "arrivals-rate")
    pattern = RandomTraffic(cube)
    rate, cycles = 0.2, 600
    total = sum(
        len(draw_arrivals(nodes, rate, pattern, rng)) for _ in range(cycles)
    )
    n = len(nodes) * cycles
    # Uniform random over 16 nodes has a 1/16 fixed-point chance, so
    # the delivered-offer rate is rate * 15/16.
    expect = rate * (len(nodes) - 1) / len(nodes)
    se = math.sqrt(expect * (1 - expect) / n)
    assert abs(total / n - expect) < 5 * se


# ----------------------------------------------------------------------
# draw_user_count
# ----------------------------------------------------------------------
@pytest.mark.parametrize("distribution", USER_DISTRIBUTIONS)
def test_user_counts_nonnegative_integers(distribution):
    rng = make_rng(1, f"users-{distribution}")
    for _ in range(500):
        k = draw_user_count(distribution, 20.0, 36.0, rng)
        assert isinstance(k, int) and k >= 0


@pytest.mark.parametrize(
    "distribution,variance",
    [("poisson", None), ("normal", 25.0), ("log_normal", 25.0)],
)
def test_user_count_empirical_mean(distribution, variance):
    rng = make_rng(8, f"users-mean-{distribution}")
    mean, n = 50.0, 4000
    draws = [
        draw_user_count(distribution, mean, variance, rng) for _ in range(n)
    ]
    var = variance if variance is not None else mean
    se = math.sqrt(var / n)
    # Rounding to integers adds at most 0.5 of bias headroom.
    assert abs(sum(draws) / n - mean) < 5 * se + 0.5


def test_zero_mean_draws_zero():
    rng = make_rng(2, "users-degenerate")
    for distribution in USER_DISTRIBUTIONS:
        assert draw_user_count(distribution, 0.0, None, rng) == 0


def test_unknown_distribution_rejected():
    rng = make_rng(2, "users-bad")
    with pytest.raises(ValueError, match="distribution"):
        draw_user_count("zipf", 10.0, None, rng)


# ----------------------------------------------------------------------
# DynamicInjection equivalence: the extraction changed no byte
# ----------------------------------------------------------------------
def test_dynamic_injection_stream_unchanged():
    """Re-derive DynamicInjection's firing decisions by hand.

    The model must consume exactly one ``rng.random(len(nodes))``
    vector per cycle and fire node i iff ``vec[i] < rate`` — the
    contract the byte-identical event-log tests depend on.
    """
    rate = 0.3
    rng_a = make_rng(7, "dyn-equiv")
    rng_b = make_rng(7, "dyn-equiv")
    for _ in range(50):
        fired = bernoulli_fires(NODES, rate, rng_a)
        vec = rng_b.random(len(NODES))
        assert list(fired) == [
            u for u, x in zip(NODES, vec) if x < rate
        ]
