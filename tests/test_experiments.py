"""Tests for the experiment harness and paper-table definitions."""

import math
import os

import pytest

from repro.experiments import (
    PAPER_TABLES,
    HypercubeExperiment,
    check_table_shape,
    experiment_seed,
    run_table,
    scale_dimensions,
    table_result,
)


def test_all_twelve_tables_defined():
    assert set(PAPER_TABLES) == set(range(1, 13))
    for k, spec in PAPER_TABLES.items():
        assert spec.number == k
        assert spec.reference  # paper values transcribed
        assert spec.injection in ("static", "dynamic")


def test_reference_values_sample():
    """Spot-check transcription against the paper."""
    assert PAPER_TABLES[1].reference[10] == (10.96, 19)
    assert PAPER_TABLES[2].reference[14] == (29.0, 29)
    assert PAPER_TABLES[9].reference[14] == (18.30, 49, 76)
    assert PAPER_TABLES[12].reference[9] == (11.28, 37, 94)


def test_dynamic_flag():
    assert not PAPER_TABLES[5].dynamic
    assert PAPER_TABLES[10].dynamic


def test_scale_dimensions_env(monkeypatch):
    monkeypatch.delenv("REPRO_NS", raising=False)
    monkeypatch.setenv("REPRO_SCALE", "ci")
    assert scale_dimensions() == (4, 5, 6)
    monkeypatch.setenv("REPRO_SCALE", "paper")
    assert scale_dimensions() == (10, 11, 12, 13, 14)
    monkeypatch.setenv("REPRO_NS", "3, 7")
    assert scale_dimensions() == (3, 7)
    monkeypatch.delenv("REPRO_NS")
    monkeypatch.setenv("REPRO_SCALE", "bogus")
    with pytest.raises(ValueError):
        scale_dimensions()


def test_experiment_seed_env(monkeypatch):
    monkeypatch.setenv("REPRO_SEED", "99")
    assert experiment_seed() == 99
    monkeypatch.delenv("REPRO_SEED")
    assert experiment_seed(7) == 7


def test_run_table2_small_matches_law():
    table = run_table(2, ns=(3, 4))
    assert check_table_shape(2, table) == []
    assert [r.l_max for r in table.rows] == [7, 9]


def test_run_table1_shape():
    table = run_table(1, ns=(3, 4), seed=5)
    assert check_table_shape(1, table) == []
    for r in table.rows:
        assert r.n + 1 - 1.5 <= r.l_avg <= r.n + 4


def test_run_dynamic_table_has_injection_rate():
    table = run_table(9, ns=(3,), seed=5)
    assert table.rows[0].i_r is not None
    assert 0 < table.rows[0].i_r <= 100


def test_table_result_single_cell():
    res = table_result(1, 3, seed=1)
    assert res.delivered > 0


def test_static_packets_per_node_scaling():
    spec = PAPER_TABLES[5]  # "n packets"
    exp = spec.experiment(4, seed=0)
    assert exp.packets_per_node == 4
    exp1 = PAPER_TABLES[1].experiment(4, seed=0)
    assert exp1.packets_per_node == 1


def test_check_table_shape_catches_violations():
    from repro.analysis import PaperTable, TableRow

    bad = PaperTable(title="bad", dynamic=False)
    bad.rows = [TableRow(n=4, N=16, l_avg=12.0, l_max=15)]
    assert check_table_shape(2, bad)  # complement law violated


def test_experiment_auto_duration_grows_with_n():
    e = HypercubeExperiment(pattern="random", injection="dynamic")
    assert e.auto_duration(10) > e.auto_duration(4)
    assert e.auto_warmup(10) < e.auto_duration(10)


def test_experiment_rejects_unknown_injection():
    e = HypercubeExperiment(pattern="random", injection="nope")
    with pytest.raises(ValueError):
        e.build(3)


def test_algorithm_factory_override():
    from repro.routing import HypercubeObliviousRouting

    table = run_table(2, ns=(3,), algorithm_factory=HypercubeObliviousRouting)
    # Oblivious routing on complement is conflict-heavy: latencies
    # exceed the adaptive 2n+1 law... but with 1 packet/node it may
    # still be fine; just check the run completed.
    assert table.rows[0].l_max >= 7
