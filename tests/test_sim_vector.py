"""Cross-validation of the table-driven vector engine.

:class:`VectorSimulator` must be *packet-for-packet identical* to the
reference :class:`PacketSimulator` on every topology — same latency
multiset, same cycle counts, same injection statistics — for every
engine configuration the vector engine supports (FIFO/LIFO service,
paper/rotating buffer policy, any central-queue capacity).  This
mirrors ``tests/test_sim_compiled.py``, plus the table-compilation
edge cases: single-node networks, packets injected at their own
destination, dynamic-link transitions mid-cycle, and the capability
errors the engine raises instead of silently degrading.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.message import Message, reset_message_ids
from repro.core.queues import QueueId, deliver
from repro.core.routing_function import RoutingAlgorithm
from repro.topology.base import Topology
from repro.routing import (
    CCCAdaptiveRouting,
    HypercubeAdaptiveRouting,
    MeshAdaptiveRouting,
    ShuffleExchangeRouting,
    TorusRouting,
)
from repro.sim import (
    DynamicInjection,
    EngineCapabilityError,
    InjectionModel,
    PacketSimulator,
    RandomTraffic,
    RoutingTables,
    StaticInjection,
    VectorSimulator,
    make_rng,
)
from repro.telemetry import TelemetryProbe
from repro.topology import (
    CubeConnectedCycles,
    Hypercube,
    Mesh,
    ShuffleExchange,
    Torus,
)

TOPOLOGIES = {
    "mesh": (lambda: Mesh((5, 5)), MeshAdaptiveRouting),
    "torus": (lambda: Torus((4, 4)), TorusRouting),
    "shuffle": (lambda: ShuffleExchange(4), ShuffleExchangeRouting),
    "hypercube": (lambda: Hypercube(4), HypercubeAdaptiveRouting),
    "ccc": (lambda: CubeConnectedCycles(3), CCCAdaptiveRouting),
}


def run_both(key, make_inj, **kw):
    build, alg_cls = TOPOLOGIES[key]
    topo = build()
    ref = PacketSimulator(alg_cls(topo), make_inj(topo), **kw).run(
        max_cycles=500_000
    )
    topo2 = build()
    vec = VectorSimulator(alg_cls(topo2), make_inj(topo2), **kw).run(
        max_cycles=500_000
    )
    return ref, vec


def assert_identical(ref, vec):
    assert sorted(ref.latency.values) == sorted(vec.latency.values)
    assert ref.cycles == vec.cycles
    assert ref.injected == vec.injected
    assert ref.delivered == vec.delivered
    assert ref.attempts == vec.attempts
    assert ref.successes == vec.successes


# ----------------------------------------------------------------------
# Identity on every topology / engine configuration
# ----------------------------------------------------------------------
@pytest.mark.parametrize("key", sorted(TOPOLOGIES))
def test_static_random_identical(key):
    ref, vec = run_both(
        key, lambda t: StaticInjection(2, RandomTraffic(t), make_rng(0))
    )
    assert_identical(ref, vec)


@pytest.mark.parametrize("key", sorted(TOPOLOGIES))
def test_dynamic_saturated_identical(key):
    ref, vec = run_both(
        key,
        lambda t: DynamicInjection(
            1.0, RandomTraffic(t), make_rng(1), duration=200, warmup=50
        ),
    )
    assert_identical(ref, vec)


@pytest.mark.parametrize("key", ["mesh", "torus", "shuffle"])
def test_lifo_service_identical(key):
    ref, vec = run_both(
        key,
        lambda t: StaticInjection(4, RandomTraffic(t), make_rng(2)),
        service="lifo",
        central_capacity=2,
    )
    assert_identical(ref, vec)


@pytest.mark.parametrize("key", ["mesh", "torus", "shuffle"])
def test_rotating_policy_identical(key):
    ref, vec = run_both(
        key,
        lambda t: DynamicInjection(
            0.7, RandomTraffic(t), make_rng(3), duration=200, warmup=50
        ),
        policy="rotating",
    )
    assert_identical(ref, vec)


def test_small_capacity_identical():
    ref, vec = run_both(
        "torus",
        lambda t: StaticInjection(5, RandomTraffic(t), make_rng(4)),
        central_capacity=1,
    )
    assert_identical(ref, vec)


def test_occupancy_sampling_identical():
    kw = dict(collect_occupancy=True, occupancy_sample_every=2)
    ref, vec = run_both(
        "mesh",
        lambda t: StaticInjection(3, RandomTraffic(t), make_rng(5)),
        **kw,
    )
    assert_identical(ref, vec)
    assert ref.occupancy["peak"] == vec.occupancy["peak"]
    assert ref.occupancy["mean"].keys() == vec.occupancy["mean"].keys()
    for k, v in ref.occupancy["mean"].items():
        assert vec.occupancy["mean"][k] == pytest.approx(v)


# ----------------------------------------------------------------------
# Table-compilation edge cases
# ----------------------------------------------------------------------
class _SingleNode(Topology):
    """One node, zero links (the built-in topologies require >= 2)."""

    name = "single"

    @property
    def num_nodes(self):
        return 1

    def nodes(self):
        return iter((0,))

    def neighbors(self, u):
        return ()

    def link_index(self, u, v):
        raise KeyError((u, v))

    def distance(self, u, v):
        return 0


class _SingleNodeRouting(RoutingAlgorithm):
    """Degenerate algorithm: inject into the one central queue, whose
    only static hop is delivery (no physical links exist)."""

    name = "single-node"

    def central_queue_kinds(self, node):
        return ("A",)

    def injection_targets(self, src, dst, state=None):
        return frozenset({QueueId(src, "A")})

    def static_hops(self, q, dst, state=None):
        if q.node == dst and q.kind == "A":
            return frozenset({deliver(dst)})
        return frozenset()


def test_single_node_network():
    """Table compilation of a one-node, zero-link network must not
    degenerate; a self-addressed packet delivers identically."""
    results = []
    for engine_cls in (PacketSimulator, VectorSimulator):
        topo = _SingleNode()
        sim = engine_cls(_SingleNodeRouting(topo), _AtDestination(0))
        results.append(sim.run(max_cycles=100))
    ref, vec = results
    assert_identical(ref, vec)
    assert vec.delivered == 1
    tables = RoutingTables(_SingleNodeRouting(_SingleNode()))
    assert tables.nodes == [0]
    assert len(tables.slot_src) == 0  # no links -> no output slots


class _AtDestination(InjectionModel):
    """Places one packet whose destination *is* its source node.

    The stock injection models never generate ``dst == src`` draws, so
    this exercises the entry path where a packet is deliverable the
    moment it leaves the injection queue.
    """

    def __init__(self, node):
        self.node = node
        self.placed = False

    def attempt(self, sim, cycle):
        if not self.placed:
            alg = sim.algorithm
            msg = Message(
                src=self.node,
                dst=self.node,
                state=alg.initial_state(self.node, self.node),
            )
            sim.place_in_injection_queue(self.node, msg, cycle)
            self.placed = True

    def finished(self, sim, cycle):
        return self.placed and sim.active == 0


@pytest.mark.parametrize("key", ["mesh", "hypercube"])
def test_injected_at_destination(key):
    build, alg_cls = TOPOLOGIES[key]
    results = []
    for engine_cls in (PacketSimulator, VectorSimulator):
        topo = build()
        node = next(iter(topo.nodes()))
        sim = engine_cls(alg_cls(topo), _AtDestination(node))
        results.append(sim.run(max_cycles=100))
    ref, vec = results
    assert_identical(ref, vec)
    assert vec.delivered == 1
    # h = 0 hops: delivered the cycle after injection (L = 2h + 1).
    assert vec.latency.values == [1]


def test_dynamic_link_transitions_mid_cycle():
    """Seeded congestion on a capacity-1 hypercube forces packets onto
    dynamic links, whose table rows flip per-message state mid-cycle;
    the event logs (which record the dynamic flag per hop) must stay
    byte-identical."""
    logs, saw_dynamic = {}, False
    for engine_cls in (PacketSimulator, VectorSimulator):
        reset_message_ids()
        topo = Hypercube(4)
        probe = TelemetryProbe()
        sim = engine_cls(
            HypercubeAdaptiveRouting(topo),
            StaticInjection(3, RandomTraffic(topo), make_rng(6)),
            central_capacity=1,
        )
        probe.attach(sim)
        sim.run(max_cycles=500_000)
        logs[engine_cls.__name__] = probe.log.to_jsonl()
        saw_dynamic = saw_dynamic or any(
            r["kind"] == "hop" and r["dyn"] for r in probe.log.records()
        )
    assert saw_dynamic, "workload never used a dynamic link"
    assert logs["PacketSimulator"] == logs["VectorSimulator"]


def test_shared_tables_across_runs():
    """One RoutingTables can back a whole sweep of vector simulators."""
    build, alg_cls = TOPOLOGIES["mesh"]
    topo = build()
    alg = alg_cls(topo)
    tables = RoutingTables(alg)
    results = []
    for seed in (0, 1):
        inj = StaticInjection(2, RandomTraffic(topo), make_rng(seed))
        sim = VectorSimulator(alg, inj, tables=tables)
        results.append(sim.run(max_cycles=500_000))
    assert tables.size > 0
    ref = PacketSimulator(
        alg, StaticInjection(2, RandomTraffic(topo), make_rng(1))
    ).run(max_cycles=500_000)
    assert sorted(results[1].latency.values) == sorted(ref.latency.values)


def test_tables_algorithm_mismatch_rejected():
    build, alg_cls = TOPOLOGIES["mesh"]
    topo = build()
    tables = RoutingTables(alg_cls(topo))
    other = alg_cls(build())
    inj = StaticInjection(1, RandomTraffic(topo), make_rng(0))
    with pytest.raises(ValueError):
        VectorSimulator(other, inj, tables=tables)


def test_unhashable_state_rejected():
    """Table compilation interns routing states by hash; an algorithm
    whose states are unhashable gets a capability error naming the
    engines that still work."""
    topo = Mesh((3, 3))
    tables = RoutingTables(MeshAdaptiveRouting(topo))
    with pytest.raises(EngineCapabilityError, match="reference|compiled"):
        tables.state_id(["not", "hashable"])


# ----------------------------------------------------------------------
# Capability errors and engine selection
# ----------------------------------------------------------------------
def test_trace_rejected():
    topo = Mesh((3, 3))
    inj = StaticInjection(1, RandomTraffic(topo), make_rng(0))
    with pytest.raises(EngineCapabilityError):
        VectorSimulator(MeshAdaptiveRouting(topo), inj, trace=True)


def test_fault_observer_rejected():
    from repro.faults import DeadlockWatchdog

    topo = Mesh((3, 3))
    inj = StaticInjection(1, RandomTraffic(topo), make_rng(0))
    sim = VectorSimulator(MeshAdaptiveRouting(topo), inj)
    with pytest.raises(EngineCapabilityError):
        sim.add_observer(DeadlockWatchdog())


def test_engine_env_override_vector(monkeypatch):
    from repro.experiments import HypercubeExperiment

    monkeypatch.setenv("REPRO_ENGINE", "vector")
    exp = HypercubeExperiment(pattern="random", injection="static", seed=1)
    assert type(exp.build(4)) is VectorSimulator


def test_build_simulator_vector_engine():
    from repro.experiments import build_simulator

    topo = Mesh((4, 4))
    sim = build_simulator(
        MeshAdaptiveRouting(topo),
        StaticInjection(1, RandomTraffic(topo), make_rng(0)),
        engine="vector",
    )
    assert type(sim) is VectorSimulator


def test_fast_on_generic_topology_reports_engine_matrix():
    """engine='fast' on a non-hypercube algorithm must fail with the
    capability matrix, not a bare TypeError (ISSUE 6 satellite)."""
    from repro.experiments import build_simulator

    topo = Mesh((4, 4))
    with pytest.raises(EngineCapabilityError) as exc:
        build_simulator(
            MeshAdaptiveRouting(topo),
            StaticInjection(1, RandomTraffic(topo), make_rng(0)),
            engine="fast",
        )
    msg = str(exc.value)
    assert "MeshAdaptiveRouting" in msg
    for engine in ("reference", "compiled", "fast", "vector"):
        assert engine in msg
    # EngineCapabilityError subclasses TypeError: existing callers that
    # caught TypeError keep working.
    assert isinstance(exc.value, TypeError)


def test_fault_harness_falls_back_from_vector():
    """make_fault_simulator honors REPRO_ENGINE=vector by falling back
    to a fault-capable engine instead of raising."""
    from repro.faults import FaultSchedule
    from repro.faults.experiments import make_fault_simulator
    from repro.sim import CompiledPacketSimulator

    topo = Hypercube(4)
    sim = make_fault_simulator(
        HypercubeAdaptiveRouting(topo),
        StaticInjection(1, RandomTraffic(topo), make_rng(0)),
        FaultSchedule.healthy(topo),
        engine="vector",
    )
    assert type(sim) is CompiledPacketSimulator


# ----------------------------------------------------------------------
# Property-style seeded identity
# ----------------------------------------------------------------------
@settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    key=st.sampled_from(sorted(TOPOLOGIES)),
    packets=st.integers(1, 3),
    seed=st.integers(0, 10_000),
    capacity=st.integers(1, 5),
    service=st.sampled_from(["fifo", "lifo"]),
)
def test_property_identical_static(key, packets, seed, capacity, service):
    ref, vec = run_both(
        key,
        lambda t: StaticInjection(packets, RandomTraffic(t), make_rng(seed)),
        central_capacity=capacity,
        service=service,
    )
    assert_identical(ref, vec)


@settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    key=st.sampled_from(["mesh", "torus", "shuffle"]),
    seed=st.integers(0, 10_000),
    rate=st.sampled_from([0.3, 0.7, 1.0]),
    policy=st.sampled_from(["paper", "rotating"]),
)
def test_property_identical_dynamic(key, seed, rate, policy):
    ref, vec = run_both(
        key,
        lambda t: DynamicInjection(
            rate, RandomTraffic(t), make_rng(seed), duration=120, warmup=30
        ),
        policy=policy,
    )
    assert_identical(ref, vec)
