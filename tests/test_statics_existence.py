"""Existence condition + scheme synthesis for arbitrary digraphs."""

import networkx as nx
import pytest

from repro.core import verify_algorithm
from repro.statics import deadlock_free_routing_exists, synthesize_routing
from repro.statics.existence import as_directed_graph
from repro.topology.graph import DirectedGraph

RING5 = [(i, (i + 1) % 5) for i in range(5)]
DAG = [("a", "b"), ("b", "c"), ("a", "c")]
TWO_RINGS_BRIDGE = (
    [(i, (i + 1) % 3) for i in range(3)]
    + [(i + 10, (i + 1) % 3 + 10) for i in range(3)]
    + [(0, 10)]
)


# -- DirectedGraph topology -------------------------------------------------


def test_directed_graph_basics():
    g = DirectedGraph(RING5, name="ring5")
    assert g.num_nodes == 5
    assert g.distance(0, 3) == 3
    assert g.distance(3, 0) == 2  # around the ring
    assert g.is_adjacent(0, 1) and not g.is_adjacent(1, 0)
    assert g.reachable(0, 4)
    assert "ring5" in g.name


def test_directed_graph_drops_self_loops():
    g = DirectedGraph([(0, 1), (1, 1), (1, 0)])
    assert not g.is_adjacent(1, 1)
    assert g._dropped_self_loops == 1


def test_directed_graph_unreachable_distance_raises():
    g = DirectedGraph([(0, 1)])
    assert not g.reachable(1, 0)
    with pytest.raises(ValueError):
        g.distance(1, 0)


def test_directed_graph_from_networkx():
    g = DirectedGraph(nx.DiGraph(DAG))
    assert g.num_nodes == 3
    assert g.distance("a", "c") == 1


# -- the existence condition ------------------------------------------------


def test_acyclic_graph_needs_one_class():
    rep = deadlock_free_routing_exists(DAG)
    assert rep.acyclic
    assert rep.min_classes == 1
    assert rep.exists
    assert rep.cycle is None
    assert "acyclic" in rep.summary()


def test_cyclic_graph_needs_two_classes():
    rep = deadlock_free_routing_exists(RING5)
    assert not rep.acyclic
    assert rep.min_classes == 2
    assert rep.exists  # default budget is 2 classes
    assert rep.nontrivial_sccs == 1
    # the 1-class obstruction witness is a real cycle of the graph
    assert rep.cycle is not None
    g = nx.DiGraph(RING5)
    for u, v in rep.cycle:
        assert g.has_edge(u, v)


def test_one_class_budget_refused_on_cyclic_graph():
    rep = deadlock_free_routing_exists(RING5, classes=1)
    assert not rep.exists
    assert rep.min_classes == 2


def test_report_to_dict():
    d = deadlock_free_routing_exists(RING5).to_dict()
    assert d["min_classes"] == 2 and d["exists"] is True
    assert d["nodes"] == 5 and d["edges"] == 5


def test_as_directed_graph_normalizes():
    assert as_directed_graph(RING5).num_nodes == 5
    assert as_directed_graph(nx.DiGraph(DAG)).num_nodes == 3
    g = DirectedGraph(DAG)
    assert as_directed_graph(g) is g


# -- synthesis: the sufficiency direction, mechanically checked -------------


@pytest.mark.parametrize(
    "edges,label",
    [
        (RING5, "ring5"),
        (DAG, "dag"),
        (TWO_RINGS_BRIDGE, "two-rings-bridge"),
        ([(0, 1), (1, 1), (2, 3)], "selfloop-disconnected"),
    ],
    ids=["ring5", "dag", "two-rings-bridge", "selfloop-disconnected"],
)
def test_synthesized_scheme_verifies(edges, label):
    alg = synthesize_routing(edges, name=label)
    report = verify_algorithm(
        alg, check_minimal=False, check_fully_adaptive=False
    )
    assert report.deadlock_free, report.summary()


def test_synthesized_scheme_verifies_on_random_digraph():
    """A fixed pseudo-random digraph (seeded, so deterministic)."""
    import numpy as np

    rng = np.random.default_rng(17)  # lint: ok
    n = 8
    edges = set()
    while len(edges) < 17:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v:
            edges.add((u, v))
    alg = synthesize_routing(sorted(edges), name="random-8n")
    report = verify_algorithm(
        alg, check_minimal=False, check_fully_adaptive=False
    )
    assert report.deadlock_free, report.summary()


def test_synthesis_uses_one_class_on_acyclic():
    alg = synthesize_routing(DAG)
    assert len(alg.central_queue_kinds("a")) == 1


def test_synthesis_uses_two_classes_on_cyclic():
    alg = synthesize_routing(RING5)
    assert len(alg.central_queue_kinds(0)) == 2
