"""The service loop (`repro.serve.service`): drain, determinism, HTTP.

The two contracts docs/SERVING.md pins:

* **graceful drain** — between the stop signal and the final snapshot
  no packet is lost: every injected packet is delivered before the
  loop exits (deferred offers are *cancelled*, counted, and were never
  injected);
* **record-mode determinism** — identical scenario + seed + cycle
  budget produce byte-identical event logs, run to run and engine to
  engine.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

from repro.serve import (
    EXIT_CLEAN,
    OpenLoopInjection,
    TrafficService,
    load_scenario,
)
from repro.sim.tables import EngineCapabilityError


def scenario_raw(**service_overrides) -> dict:
    service = {
        "duration_cycles": 300,
        "tick_cycles": 25,
        "record": True,
        "admission": {"policy": "defer", "max_deferred_per_node": 4},
    }
    service.update(service_overrides)
    return {
        "name": "svc-test",
        "seed": 31,
        "topology": {"family": "hypercube", "size": 4},
        "populations": [
            {
                "name": "gold",
                "qos": "gold",
                "users": {"mean": 40},
                "rate_per_user": 0.02,
            },
            {
                "name": "bronze",
                "qos": "bronze",
                "users": {"mean": 60, "distribution": "normal",
                          "variance": 100},
                "rate_per_user": 0.04,
                "load_shape": {"kind": "bursty", "period": 100,
                               "multiplier": 3, "burst_cycles": 25},
            },
        ],
        "service": service,
    }


def run_service(engine="reference", **service_overrides) -> TrafficService:
    svc = TrafficService(
        load_scenario(scenario_raw(**service_overrides)), engine=engine
    )
    assert svc.serve() == EXIT_CLEAN
    return svc


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
def test_duration_drain_loses_no_packets():
    svc = run_service()
    r = svc.result
    assert r.injected > 0
    assert r.injected == r.delivered
    assert r.undelivered == 0
    assert svc.model.drain_reason == "duration budget reached"
    # Admission arithmetic closes: every offer was accepted, dropped,
    # shed, cancelled, or is still deferred (backlog is empty after
    # the drain cancellation).
    adm = svc.model.admission
    for qos in adm.classes():
        assert adm.offered.get(qos, 0) == (
            adm.accepted.get(qos, 0)
            + adm.dropped.get(qos, 0)
            + adm.shed.get(qos, 0)
            + adm.cancelled.get(qos, 0)
        )
    assert adm.deferred_total == 0


def test_signal_drain_loses_no_packets():
    """request_stop mid-run: in-flight packets all deliver."""
    scn = load_scenario(scenario_raw(duration_cycles=None))
    svc = TrafficService(scn, engine="reference")
    # Trip the stop from inside the tick callback after ~100 cycles,
    # deterministically (no wall clock involved).
    original = svc._on_tick

    def tick(sim, cycle):
        if cycle >= 100:
            svc.request_stop("test-stop")
        original(sim, cycle)

    svc.model.on_tick = tick
    assert svc.serve() == EXIT_CLEAN
    r = svc.result
    assert r.injected == r.delivered and r.undelivered == 0
    assert svc.model.drain_reason == "test-stop"
    assert svc.model.draining


def test_drain_cancels_backlog_and_counts_it():
    # Saturate: high rate + drop-averse defer policy builds a backlog.
    svc = run_service(
        duration_cycles=150,
        admission={"policy": "defer", "max_deferred_per_node": 64},
    )
    adm = svc.model.admission
    assert svc.result.injected == svc.result.delivered
    assert adm.deferred_total == 0  # backlog cancelled at drain


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_record_mode_byte_identical_across_runs_and_engines():
    logs = {}
    for engine in ("reference", "vector", "compiled"):
        logs[engine] = run_service(engine=engine).probe.log.to_jsonl()
    assert logs["reference"] == logs["vector"] == logs["compiled"]
    # Run-to-run on the same engine too.
    again = run_service(engine="reference").probe.log.to_jsonl()
    assert again == logs["reference"]


def test_auto_engine_serves():
    svc = run_service(engine=None)  # scenario default: auto
    assert svc.result.injected == svc.result.delivered


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
def test_qos_latency_split_by_class():
    svc = run_service()
    snap = svc.registry.snapshot()
    gold = snap.get('repro_qos_latency_cycles{qos=gold}')
    bronze = snap.get('repro_qos_latency_cycles{qos=bronze}')
    assert gold and gold["count"] > 0
    assert bronze and bronze["count"] > 0
    delivered = snap["repro_packets_delivered_total"]["value"]
    assert gold["count"] + bronze["count"] == delivered
    # The uid->qos map was fully consumed (bounded memory).
    assert svc.model.uid_qos == {}


def test_admission_metrics_published():
    svc = run_service()
    snap = svc.registry.snapshot()
    offered = sum(
        v["value"] for k, v in snap.items()
        if k.startswith("repro_admission_offers_total{outcome=offered")
    )
    assert offered == sum(svc.model.admission.offered.values())
    assert "repro_service_cycle" in snap
    assert "repro_offered_load" in snap
    assert 'repro_active_users{population=gold}' in snap


# ----------------------------------------------------------------------
# HTTP endpoint
# ----------------------------------------------------------------------
def test_endpoint_scrapes_during_run(tmp_path):
    scn = load_scenario(scenario_raw(duration_cycles=None,
                                     tick_seconds=0.005))
    svc = TrafficService(scn, engine="reference")
    codes = []
    t = threading.Thread(target=lambda: codes.append(svc.serve(port=0)))
    t.start()
    try:
        deadline = time.monotonic() + 10
        while svc.endpoint is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert svc.endpoint is not None
        url = svc.endpoint.url
        time.sleep(0.1)
        metrics = urllib.request.urlopen(url + "/metrics").read().decode()
        health = json.loads(
            urllib.request.urlopen(url + "/healthz").read().decode()
        )
        assert health["status"] == "ok"
        assert health["phase"] == "serving"
        assert health["scenario"] == "svc-test"
        assert "repro_service_cycle" in metrics
        missing = urllib.request.urlopen(url + "/nope")
    except urllib.error.HTTPError as exc:
        assert exc.code == 404
    finally:
        svc.request_stop("test shutdown")
        t.join(timeout=60)
    assert codes == [EXIT_CLEAN]
    r = svc.result
    assert r.injected == r.delivered


def test_artifacts_written(tmp_path):
    scn = load_scenario(scenario_raw())
    svc = TrafficService(scn, engine="reference")
    assert svc.serve(outdir=tmp_path) == EXIT_CLEAN
    assert (tmp_path / "events.jsonl").exists()
    assert (tmp_path / "metrics.prom").exists()
    assert (tmp_path / "summary.json").exists()
    text = (tmp_path / "metrics.prom").read_text()
    assert "repro_qos_latency_cycles" in text


# ----------------------------------------------------------------------
# Engine policy: refuse loudly
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["fast", "sharded"])
def test_unservable_engines_refused(engine):
    scn = load_scenario(scenario_raw())
    with pytest.raises(EngineCapabilityError) as exc:
        TrafficService(scn, engine=engine)
    assert "docs/S" in str(exc.value)  # points at the docs


# ----------------------------------------------------------------------
# Workload model details
# ----------------------------------------------------------------------
def test_open_loop_model_resamples_users():
    scn = load_scenario(scenario_raw())
    svc = run_service()
    model = svc.model
    assert isinstance(model, OpenLoopInjection)
    for pop in model.populations:
        assert pop.active_users >= 0
        assert 0.0 <= pop.rate <= 1.0
    assert model.attempts >= model.successes > 0
    assert scn.seed == model.scenario.seed


def test_drain_is_idempotent():
    scn = load_scenario(scenario_raw())
    svc = TrafficService(scn, engine="reference")
    svc.model.begin_drain("first", 10)
    svc.model.begin_drain("second", 20)
    assert svc.model.drain_reason == "first"
    assert svc.model.drain_cycle == 10
