"""Unit tests for the event log, schema, and JSONL round-trip."""

import json

import pytest

from repro.telemetry import (
    SCHEMA_VERSION,
    EventLog,
    events_jsonl,
    read_jsonl,
)

RAW = [
    ("inject", 0, 1, (0, 1), (1, 0)),
    ("enqueue", 0, 1, (0, 1), "A"),
    ("hop", 1, 1, (0, 1), (1, 1), 0, False, "A"),
    ("hop", 2, 1, (1, 1), (1, 0), 1, True, "B"),
    ("enqueue", 3, 1, (1, 0), "B"),
    ("deliver", 4, 1, (1, 0), 9),
    ("drop", 5, 2, (0, 0), "node-down"),
    ("epoch", 5, -1, "dead_nodes=(0, 0)"),
]


def make_log(raw=RAW):
    log = EventLog()
    log.raw.extend(raw)
    return log


def test_schema_version_stamped_on_every_record():
    for rec in make_log().records():
        assert rec["v"] == SCHEMA_VERSION


def test_canonical_order_is_cycle_then_uid():
    log = make_log(list(reversed(RAW)))
    order = [(ev[1], ev[2]) for ev in log.canonical()]
    assert order == sorted(order)


def test_record_fields_per_kind():
    by_kind = {}
    for rec in make_log().records():
        by_kind.setdefault(rec["kind"], rec)
    assert by_kind["inject"]["dst"] == [1, 0]
    assert by_kind["enqueue"]["queue"] == "A"
    hop = by_kind["hop"]
    assert hop["src"] == [0, 1] and hop["node"] == [1, 1]
    assert hop["dyn"] is False and hop["cls"] == 0
    assert by_kind["deliver"]["latency"] == 9
    assert by_kind["drop"]["reason"] == "node-down"
    assert by_kind["epoch"]["desc"].startswith("dead_nodes")
    assert "uid" not in by_kind["epoch"]


def test_jsonl_is_deterministic_and_compact():
    text = make_log().to_jsonl()
    assert text.endswith("\n")
    for line in text.splitlines():
        rec = json.loads(line)
        # keys sorted, no whitespace
        assert line == json.dumps(rec, sort_keys=True, separators=(",", ":"))
    assert events_jsonl([]) == ""


def test_round_trip_restores_node_tuples():
    recs = list(read_jsonl(make_log().to_jsonl()))
    inject = next(r for r in recs if r["kind"] == "inject")
    assert inject["node"] == (0, 1)
    assert inject["dst"] == (1, 0)
    hop = next(r for r in recs if r["kind"] == "hop")
    assert hop["src"] == (0, 1)


def test_read_rejects_unknown_schema():
    bad = json.dumps({"v": SCHEMA_VERSION + 1, "kind": "inject"})
    with pytest.raises(ValueError, match="unsupported event schema"):
        list(read_jsonl(bad))


def test_counts():
    assert make_log().counts() == {
        "inject": 1,
        "enqueue": 2,
        "hop": 2,
        "deliver": 1,
        "drop": 1,
        "epoch": 1,
    }


def test_timelines_group_by_uid_and_skip_epochs():
    tl = make_log().timelines()
    assert set(tl) == {1, 2}
    assert [r["kind"] for r in tl[1]] == [
        "inject",
        "enqueue",
        "hop",
        "hop",
        "enqueue",
        "deliver",
    ]
    assert [r["kind"] for r in tl[2]] == ["drop"]
