"""Tests for the extended escape-CDG verifier."""

import networkx as nx
import pytest

from repro.topology import Hypercube, Torus
from repro.wormhole import (
    HungEscapeHypercubeWormhole,
    HypercubeAdaptiveWormhole,
    HypercubeEcubeWormhole,
    TorusAdaptiveWormhole,
    TorusDimensionOrderWormhole,
    extended_escape_cdg,
    verify_wormhole_scheme,
)


@pytest.mark.parametrize(
    "make",
    [
        lambda: HypercubeEcubeWormhole(Hypercube(3)),
        lambda: HypercubeEcubeWormhole(Hypercube(4)),
        lambda: HypercubeAdaptiveWormhole(Hypercube(3)),
        lambda: HypercubeAdaptiveWormhole(Hypercube(4)),
        lambda: TorusDimensionOrderWormhole(Torus((4, 4))),
        lambda: TorusAdaptiveWormhole(Torus((4, 4))),
        lambda: TorusAdaptiveWormhole(Torus((3, 5))),
        lambda: TorusAdaptiveWormhole(Torus((3, 3, 3))),
    ],
    ids=lambda mk: mk().name + "/" + mk().topology.name,
)
def test_shipped_schemes_verify(make):
    report = verify_wormhole_scheme(make())
    assert report.deadlock_free, report.errors
    assert report.minimal is not False


def test_hung_escape_counterexample():
    """Transplanting the packet scheme's hung escape to worm-hole
    channels is NOT deadlock free: adaptive 1->0 detours create
    backward indirect dependencies between eA channels."""
    report = verify_wormhole_scheme(HungEscapeHypercubeWormhole(Hypercube(3)))
    assert not report.escape_cdg_acyclic
    assert any("eA" in e for e in report.errors)


def test_cdg_structure_ecube():
    """E-cube escape dependencies only ascend dimensions."""
    cube = Hypercube(3)
    g = extended_escape_cdg(HypercubeEcubeWormhole(cube))
    for a, b in g.edges():
        dim_a = cube.link_index(a.u, a.v)
        dim_b = cube.link_index(b.u, b.v)
        assert dim_b > dim_a


def test_cdg_structure_adaptive_hypercube():
    """With adaptive detours the escape deps still ascend dimensions
    (corrected dimensions never become incorrect on minimal routes)."""
    cube = Hypercube(4)
    g = extended_escape_cdg(HypercubeAdaptiveWormhole(cube))
    assert nx.is_directed_acyclic_graph(g)
    for a, b in g.edges():
        assert cube.link_index(b.u, b.v) > cube.link_index(a.u, a.v)


def test_escape_available_everywhere():
    report = verify_wormhole_scheme(TorusAdaptiveWormhole(Torus((4, 4))))
    assert report.escape_available


class _NoEscapeNearDst(HypercubeEcubeWormhole):
    """Broken: no escape offered one hop from the destination."""

    name = "no-escape"

    def escape_channels(self, u, dst, state):
        if self.topology.distance(u, dst) == 1:
            return []
        return super().escape_channels(u, dst, state)


def test_missing_escape_detected():
    report = verify_wormhole_scheme(_NoEscapeNearDst(Hypercube(3)))
    assert not report.escape_available


def test_nonminimal_first_hop_detected():
    class _Detour(HypercubeEcubeWormhole):
        name = "detour"

        def escape_channels(self, u, dst, state):
            from repro.wormhole import ChannelId

            diff = u ^ dst
            if not diff:
                return []
            # Move along a dimension that is already correct.
            n = self.topology.n
            for i in range(n):
                if not (diff >> i) & 1:
                    return [ChannelId(u, u ^ (1 << i), "e")]
            return super().escape_channels(u, dst, state)

    report = verify_wormhole_scheme(_Detour(Hypercube(3)))
    assert report.minimal is False


def test_report_summary():
    report = verify_wormhole_scheme(HypercubeAdaptiveWormhole(Hypercube(3)))
    s = report.summary()
    assert "wh-hypercube-adaptive" in s and "FAIL" not in s
