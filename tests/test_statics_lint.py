"""The AST determinism lint: rules, waivers, and the clean-repo gate."""

import textwrap

import pytest

from repro.statics import run_determinism_lint
from repro.statics.lint import LintFinding


def _lint_source(tmp_path, source, name="mod.py"):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / name).write_text(textwrap.dedent(source))
    return run_determinism_lint(root=pkg)


def _rules(findings):
    return [f.rule for f in findings]


# -- unseeded-rng -----------------------------------------------------------


def test_flags_argless_default_rng(tmp_path):
    findings = _lint_source(
        tmp_path,
        """
        import numpy as np
        rng = np.random.default_rng()
        """,
    )
    assert _rules(findings) == ["unseeded-rng"]
    assert "make_rng" in findings[0].message


def test_seeded_default_rng_is_fine(tmp_path):
    findings = _lint_source(
        tmp_path,
        """
        import numpy as np
        rng = np.random.default_rng(42)
        seq = np.random.SeedSequence([1, 2])
        """,
    )
    assert findings == []


def test_flags_numpy_global_rng_and_randomstate(tmp_path):
    findings = _lint_source(
        tmp_path,
        """
        import numpy as np
        x = np.random.shuffle([1, 2])
        r = np.random.RandomState(0)
        """,
    )
    assert _rules(findings) == ["unseeded-rng", "unseeded-rng"]


def test_flags_stdlib_random_draws(tmp_path):
    findings = _lint_source(
        tmp_path,
        """
        import random
        x = random.choice([1, 2])
        y = random.Random()
        """,
    )
    assert _rules(findings) == ["unseeded-rng", "unseeded-rng"]


def test_stdlib_random_not_flagged_without_import(tmp_path):
    """A local object that happens to be named ``random``."""
    findings = _lint_source(
        tmp_path,
        """
        random = get_stream()
        x = random.choice([1, 2])
        """,
    )
    assert findings == []


def test_waiver_comment_suppresses(tmp_path):
    findings = _lint_source(
        tmp_path,
        """
        import numpy as np
        rng = np.random.default_rng()  # lint: ok
        """,
    )
    assert findings == []


# -- set-iteration-order ----------------------------------------------------


def test_flags_list_over_set_in_hot_path(tmp_path):
    findings = _lint_source(
        tmp_path,
        """
        def static_hops(self, q, dst, state):
            return list({1, 2, 3})
        """,
    )
    assert _rules(findings) == ["set-iteration-order"]


def test_sorted_over_set_in_hot_path_is_fine(tmp_path):
    findings = _lint_source(
        tmp_path,
        """
        def static_hops(self, q, dst, state):
            return sorted({1, 2, 3})
        """,
    )
    assert findings == []


def test_set_iteration_outside_hot_path_is_fine(tmp_path):
    findings = _lint_source(
        tmp_path,
        """
        def helper():
            return list({1, 2, 3})
        """,
    )
    assert findings == []


def test_flags_next_iter_set_in_hot_path(tmp_path):
    findings = _lint_source(
        tmp_path,
        """
        def dynamic_hops(self, q, dst, state):
            return next(iter({1, 2}))
        """,
    )
    assert _rules(findings) == ["set-iteration-order"]


def test_flags_early_exit_loop_over_set_in_hot_path(tmp_path):
    findings = _lint_source(
        tmp_path,
        """
        def injection_targets(self, src, dst):
            for q in {1, 2, 3}:
                if q > 1:
                    return q
        """,
    )
    assert _rules(findings) == ["set-iteration-order"]


def test_exhaustive_loop_over_set_is_fine(tmp_path):
    """Order-insensitive accumulation over a set is not flagged."""
    findings = _lint_source(
        tmp_path,
        """
        def static_hops(self, q, dst, state):
            acc = set()
            for x in {1, 2, 3}:
                acc.add(x + 1)
            return acc
        """,
    )
    assert findings == []


# -- observer-api -----------------------------------------------------------


def test_flags_observer_hook_arity_drift(tmp_path):
    findings = _lint_source(
        tmp_path,
        """
        class LatencyObserver:
            def on_cycle(self, sim):
                pass
        """,
    )
    assert _rules(findings) == ["observer-api"]
    assert "on_cycle" in findings[0].message


def test_correct_observer_hooks_are_fine(tmp_path):
    findings = _lint_source(
        tmp_path,
        """
        class LatencyObserver:
            def on_cycle(self, sim, cycle):
                pass

            def on_stall(self, sim):
                pass

            def on_run_end(self, sim, result):
                pass
        """,
    )
    assert findings == []


def test_flags_unknown_on_hook_on_observer_class(tmp_path):
    findings = _lint_source(
        tmp_path,
        """
        class DeadlockWatchdog:
            def on_tick(self, sim):
                pass
        """,
    )
    assert _rules(findings) == ["observer-api"]
    assert "never call it" in findings[0].message


def test_unknown_on_method_on_plain_class_is_fine(tmp_path):
    findings = _lint_source(
        tmp_path,
        """
        class Widget:
            def on_tick(self):
                pass
        """,
    )
    assert findings == []


# -- plumbing ---------------------------------------------------------------


def test_findings_sorted_and_formatted(tmp_path):
    findings = _lint_source(
        tmp_path,
        """
        import numpy as np
        import random

        b = random.choice([1])
        a = np.random.default_rng()
        """,
    )
    assert findings == sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule)
    )
    assert isinstance(findings[0], LintFinding)
    s = str(findings[0])
    assert "pkg/mod.py" in s and "[unseeded-rng]" in s
    d = findings[0].to_dict()
    assert {"path", "line", "col", "rule", "message"} == set(d)


def test_repo_is_lint_clean():
    """The merge-gate condition: src/repro itself has no findings."""
    assert run_determinism_lint() == []
