"""Tests for the CCC adaptive routing reconstruction."""

import pytest

from repro.core import QueueId, deliver, node_path, verify_algorithm
from repro.routing import CCCAdaptiveRouting
from repro.sim import PacketSimulator, RandomTraffic, StaticInjection, make_rng
from repro.topology import CubeConnectedCycles


def alg3(**kw):
    return CCCAdaptiveRouting(CubeConnectedCycles(3), **kw)


def test_requires_ccc():
    from repro.topology import Hypercube

    with pytest.raises(TypeError):
        CCCAdaptiveRouting(Hypercube(3))


def test_four_central_queues_independent_of_n():
    for n in (3, 4, 5):
        alg = CCCAdaptiveRouting(CubeConnectedCycles(n))
        assert alg.central_queue_kinds((0, 0)) == ("P1a", "P1b", "P2a", "P2b")


def test_injection_phase_selection():
    alg = alg3()
    # Rising bits pending -> phase 1.
    assert alg.injection_targets((0b001, 0), (0b011, 2)) == {
        QueueId((0b001, 0), "P1a")
    }
    # Only falling bits -> phase 2.
    assert alg.injection_targets((0b011, 0), (0b001, 2)) == {
        QueueId((0b011, 0), "P2a")
    }


def test_mandatory_rising_correction_at_position():
    alg = alg3()
    # At (001, 1) heading to cube 011: bit 1 must rise and p == 1.
    hops = alg.static_hops(QueueId((0b001, 1), "P1a"), (0b011, 2))
    assert hops == {QueueId((0b011, 1), "P1a")}


def test_cycle_walk_when_position_wrong():
    alg = alg3()
    # At (001, 0) heading to cube 011 (rising bit 1): walk the cycle.
    hops = alg.static_hops(QueueId((0b001, 0), "P1a"), (0b011, 2))
    assert hops == {QueueId((0b001, 1), "P1a")}


def test_break_crossing_bumps_class():
    alg = alg3()
    # Walking from position 2 into position 0 crosses the break.
    hops = alg.static_hops(QueueId((0b001, 2), "P1a"), (0b010, 1))
    assert hops == {QueueId((0b001, 0), "P1b")}


def test_dynamic_early_falling_correction():
    alg = alg3()
    # At (101, 0) heading to cube 010: bit 0 falls (dynamic candidate
    # at p=0), bit 1 rises (so phase 1 is still active).
    dyn = alg.dynamic_hops(QueueId((0b101, 0), "P1a"), (0b010, 1))
    assert dyn == {QueueId((0b100, 0), "P1a")}
    # Without pending rising bits there is no dynamic hop.
    assert alg.dynamic_hops(QueueId((0b101, 0), "P1a"), (0b100, 1)) == frozenset()


def test_phase_switch_internal():
    alg = alg3()
    hops = alg.static_hops(QueueId((0b011, 0), "P1a"), (0b001, 2))
    assert hops == {QueueId((0b011, 0), "P2a")}


def test_delivery():
    alg = alg3()
    assert alg.static_hops(QueueId((0b010, 1), "P2b"), (0b010, 1)) == {
        deliver((0b010, 1))
    }


def test_machine_verified_deadlock_free():
    for n in (3, 4):
        report = verify_algorithm(CCCAdaptiveRouting(CubeConnectedCycles(n)))
        assert report.deadlock_free, (n, report.errors)


def test_static_variant_verifies_too():
    report = verify_algorithm(alg3(adaptive=False))
    assert report.deadlock_free, report.errors


def test_walks_terminate_with_linear_bound():
    ccc = CubeConnectedCycles(4)
    alg = CCCAdaptiveRouting(ccc)
    nodes = list(ccc.nodes())
    for src in nodes[::7]:
        for dst in nodes[::11]:
            if src == dst:
                continue
            p = node_path(alg.walk(src, dst))
            assert p[-1] == dst
            assert len(p) - 1 <= 4 * ccc.n


def test_simulation_drains():
    ccc = CubeConnectedCycles(3)
    alg = CCCAdaptiveRouting(ccc)
    inj = StaticInjection(3, RandomTraffic(ccc), make_rng(0))
    res = PacketSimulator(alg, inj).run(max_cycles=100_000)
    assert res.delivered == res.injected == 3 * ccc.num_nodes


def test_saturation_no_deadlock():
    from repro.sim import DynamicInjection

    ccc = CubeConnectedCycles(3)
    alg = CCCAdaptiveRouting(ccc)
    inj = DynamicInjection(
        1.0, RandomTraffic(ccc), make_rng(1), duration=300, warmup=100
    )
    res = PacketSimulator(alg, inj, central_capacity=1, stall_limit=300).run()
    assert res.delivered > 0
