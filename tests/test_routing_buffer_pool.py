"""Unit tests for the structured-buffer-pool baseline."""

import pytest

from repro.core import QueueId, node_path, verify_algorithm
from repro.routing import StructuredBufferPoolRouting
from repro.topology import Hypercube, Mesh2D, Torus


def test_levels_match_diameter():
    alg = StructuredBufferPoolRouting(Hypercube(4))
    assert alg.levels == 5
    assert alg.central_queue_kinds(0) == ("L0", "L1", "L2", "L3", "L4")


def test_hardware_blowup_vs_paper_scheme():
    """The paper's criticism: queue count grows with the diameter,
    whereas the paper's algorithms use 2 queues regardless of n."""
    for n in (3, 5, 7):
        alg = StructuredBufferPoolRouting(Hypercube(n))
        assert len(alg.central_queue_kinds(0)) == n + 1


def test_injection_enters_level_zero():
    alg = StructuredBufferPoolRouting(Hypercube(3))
    assert alg.injection_targets(2, 5) == {QueueId(2, "L0")}


def test_hops_increment_level():
    alg = StructuredBufferPoolRouting(Hypercube(3))
    for q2 in alg.static_hops(QueueId(0, "L0"), 0b111):
        assert q2.kind == "L1"


def test_works_on_mesh_and_torus():
    for topo in (Mesh2D(3), Torus((3, 3))):
        alg = StructuredBufferPoolRouting(topo)
        nodes = node_path(alg.walk((0, 0), (2, 2)))
        assert nodes[-1] == (2, 2)
        assert len(nodes) - 1 == topo.distance((0, 0), (2, 2))


def test_verifies_fully_adaptive_minimal():
    report = verify_algorithm(StructuredBufferPoolRouting(Hypercube(3)))
    assert report.ok, report.errors
    assert report.fully_adaptive and report.minimal


def test_overrunning_levels_raises():
    alg = StructuredBufferPoolRouting(Hypercube(3), levels=1)
    with pytest.raises(RuntimeError):
        alg.static_hops(QueueId(0, "L1"), 0b111)
