"""Tests for table rendering, figures, and occupancy analysis."""

import networkx as nx
import pytest

from repro.analysis import (
    ALL_FIGURES,
    PaperTable,
    TableRow,
    figure1_hypercube_qdg,
    figure2_mesh_qdg,
    figure3_shuffle_qdg,
    figure4_hypercube_node,
    figure5_mesh_node,
    figure6_shuffle_node,
    format_rows,
    occupancy_by_level,
    peak_occupancy_by_level,
    top_congested_nodes,
)
from repro.routing import HypercubeHungRouting
from repro.sim import DynamicInjection, PacketSimulator, RandomTraffic, make_rng
from repro.topology import Hypercube


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def test_paper_table_render_static():
    t = PaperTable(title="T", dynamic=False)
    t.rows.append(TableRow(n=4, N=16, l_avg=9.0, l_max=9))
    out = t.render()
    assert "L_avg" in out and "9.00" in out
    assert "I_r" not in out


def test_paper_table_render_dynamic_with_reference():
    t = PaperTable(
        title="T",
        dynamic=True,
        reference=[TableRow(n=4, N=16, l_avg=10.0, l_max=12, i_r=90.0)],
    )
    t.rows.append(TableRow(n=4, N=16, l_avg=9.5, l_max=11, i_r=95.0))
    out = t.render()
    assert "paper L_avg" in out
    assert "95" in out and "90" in out


def test_format_rows():
    out = format_rows([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
    assert "a" in out and "22" in out


def test_format_rows_empty():
    assert "no rows" in format_rows([])


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------
def test_figure1_structure():
    f = figure1_hypercube_qdg(3)
    assert f.stats["queues"] == 32
    assert f.stats["dynamic_edges"] > 0
    assert not nx.is_directed_acyclic_graph(f.graph)  # extended QDG cyclic
    assert "digraph" in f.dot
    assert "style=dashed" in f.dot  # dynamic links rendered dashed
    assert "Figure 1" in f.text


def test_figure1_hides_inject_deliver_in_dot():
    f = figure1_hypercube_qdg(3)
    assert "inj@" not in f.dot
    assert "del@" not in f.dot


def test_figure2_structure():
    f = figure2_mesh_qdg(3)
    assert f.stats["queues"] == 9 * 4
    assert f.stats["dynamic_edges"] > 0


def test_figure3_structure():
    f = figure3_shuffle_qdg(3)
    # 8 nodes x (inj + 4 central + del).
    assert f.stats["queues"] == 8 * 6
    assert f.stats["dynamic_edges"] > 0


def test_figure4_node_stats():
    f = figure4_hypercube_node()
    assert f.stats["central_queues"] == 2
    assert f.stats["out_links"] == 4
    assert "0101" in f.text


def test_figure5_and_6():
    f5 = figure5_mesh_node()
    assert f5.stats["central_queues"] == 2
    f6 = figure6_shuffle_node()
    assert f6.stats["central_queues"] == 4


def test_all_figures_registry():
    assert set(ALL_FIGURES) == {f"figure{i}" for i in range(1, 7)}
    for fn in ALL_FIGURES.values():
        bundle = fn()
        assert bundle.dot and bundle.text


# ----------------------------------------------------------------------
# Occupancy
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def hung_result():
    cube = Hypercube(4)
    alg = HypercubeHungRouting(cube)
    inj = DynamicInjection(
        1.0, RandomTraffic(cube), make_rng(0), duration=150, warmup=30
    )
    sim = PacketSimulator(alg, inj, collect_occupancy=True)
    return sim.run(), cube


def test_occupancy_by_level(hung_result):
    res, cube = hung_result
    by_level = occupancy_by_level(res, cube, kind="A")
    assert set(by_level) <= set(range(cube.n + 1))
    assert all(v >= 0 for v in by_level.values())


def test_hung_congestion_grows_toward_all_ones(hung_result):
    """The paper's motivation: without dynamic links, phase-A traffic
    piles up near 1...1 — qA occupancy grows with the level."""
    res, cube = hung_result
    by_level = occupancy_by_level(res, cube, kind="A")
    low = by_level[1]
    high = by_level[cube.n - 1]
    assert high > low


def test_peak_occupancy(hung_result):
    res, cube = hung_result
    peaks = peak_occupancy_by_level(res, cube)
    assert max(peaks.values()) <= 5


def test_top_congested(hung_result):
    res, cube = hung_result
    top = top_congested_nodes(res, top=3)
    assert len(top) == 3
    assert top[0][2] >= top[1][2] >= top[2][2]


def test_occupancy_requires_collection():
    cube = Hypercube(3)
    from repro.sim import StaticInjection, ComplementTraffic

    alg = HypercubeHungRouting(cube)
    inj = StaticInjection(1, ComplementTraffic(cube), make_rng(0))
    res = PacketSimulator(alg, inj).run(max_cycles=1000)
    with pytest.raises(ValueError):
        occupancy_by_level(res, cube)
