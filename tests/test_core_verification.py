"""Machine verification of the Section-2 theorems on every algorithm.

These tests are the reproduction's analogue of the paper's Theorems
1-3: every shipped algorithm satisfies all deadlock-freedom conditions
on exhaustively-checked instances, and deliberately broken variants
are caught.
"""

from typing import Any

import pytest

from repro.core import QueueId, deliver, verify_algorithm
from repro.core.routing_function import RoutingAlgorithm
from repro.routing import (
    HypercubeAdaptiveRouting,
    HypercubeHungRouting,
    Mesh2DAdaptiveRouting,
    ShuffleExchangeRouting,
    TorusRouting,
)
from repro.topology import Hypercube, Mesh2D, ShuffleExchange, Torus

from conftest import small_algorithm_zoo, zoo_ids


@pytest.mark.parametrize("alg", small_algorithm_zoo(), ids=zoo_ids())
def test_zoo_deadlock_free(alg):
    report = verify_algorithm(alg)
    assert report.deadlock_free, report.errors
    assert report.ok, report.errors


def test_theorem1_hypercube_n4():
    """Theorem 1 on the 4-cube: fully-adaptive, minimal, deadlock-free,
    2 central queues per node."""
    alg = HypercubeAdaptiveRouting(Hypercube(4))
    assert alg.central_queue_kinds(0) == ("A", "B")
    report = verify_algorithm(alg)
    assert report.ok, report.errors
    assert report.minimal and report.fully_adaptive


def test_theorem2_mesh_4x4():
    """Theorem 2 on the 4x4 mesh."""
    alg = Mesh2DAdaptiveRouting(Mesh2D(4))
    assert alg.central_queue_kinds((0, 0)) == ("A", "B")
    report = verify_algorithm(alg)
    assert report.ok, report.errors


def test_theorem3_shuffle_exchange_n4():
    """Theorem 3 on the 16-node shuffle-exchange (deadlock freedom +
    route length bound are checked elsewhere)."""
    alg = ShuffleExchangeRouting(ShuffleExchange(4))
    report = verify_algorithm(alg)
    assert report.deadlock_free, report.errors


def test_torus_reconstruction_5x5_full():
    """The 6-queue torus scheme on a 5x5 torus, full exploration."""
    alg = TorusRouting(Torus((5, 5)))
    report = verify_algorithm(
        alg, check_minimal=False, check_fully_adaptive=False
    )
    assert report.deadlock_free, report.errors


def test_sampled_sources_skip_level_check():
    """Restricted-source verification must not produce Level false
    alarms (Level is only defined over the full exploration)."""
    alg = TorusRouting(Torus((5, 5)))
    srcs = [(0, 0), (4, 4), (2, 3), (1, 0)]
    report = verify_algorithm(
        alg, sources=srcs, check_minimal=False, check_fully_adaptive=False
    )
    assert report.deadlock_free, report.errors


def test_report_summary_readable():
    alg = HypercubeAdaptiveRouting(Hypercube(3))
    report = verify_algorithm(alg)
    s = report.summary()
    assert "hypercube-adaptive" in s and "ok" in s and "FAIL" not in s


# ----------------------------------------------------------------------
# Negative tests: broken algorithms must be rejected.
# ----------------------------------------------------------------------
class _SwapDeadlock(RoutingAlgorithm):
    """Single queue per node, direct minimal hops: the classic
    store-and-forward swap deadlock (cyclic QDG)."""

    name = "swap-deadlock"

    def central_queue_kinds(self, node):
        return ("Q",)

    def injection_targets(self, src, dst, state=None):
        return frozenset({QueueId(src, "Q")})

    def static_hops(self, q, dst, state=None):
        u = q.node
        if u == dst:
            return frozenset({deliver(dst)})
        topo = self.topology
        du = topo.distance(u, dst)
        return frozenset(
            QueueId(v, "Q")
            for v in topo.neighbors(u)
            if topo.distance(v, dst) == du - 1
        )


def test_swap_deadlock_detected():
    alg = _SwapDeadlock(Hypercube(2))
    report = verify_algorithm(alg)
    assert not report.static_acyclic
    assert not report.deadlock_free


class _TeleportingRouting(HypercubeHungRouting):
    """Hops that jump two dimensions at once violate adjacency."""

    name = "teleporting"

    def static_hops(self, q, dst, state=None):
        u = q.node
        if u == dst:
            return frozenset({deliver(dst)})
        if q.kind == "A" and bin(u ^ dst).count("1") >= 2:
            x = u ^ dst
            lo = x & -x
            x ^= lo
            lo2 = x & -x
            return frozenset({QueueId(u ^ lo ^ lo2, "A")})
        return super().static_hops(q, dst, state)


def test_non_adjacent_hop_detected():
    alg = _TeleportingRouting(Hypercube(3))
    report = verify_algorithm(alg, check_minimal=False)
    assert not report.adjacency_ok


class _DeadEndRouting(HypercubeAdaptiveRouting):
    """Dynamic hop into a queue with no static continuation."""

    name = "dead-end"

    def dynamic_hops(self, q, dst, state=None):
        if q.kind != "A":
            return frozenset()
        u = q.node
        ones = self._ones_to_fix(u, dst)
        # Offer 1->0 corrections even when they are the LAST correction,
        # landing at the destination's B-less... worse: land in a B queue
        # from which phase-A zeros can never be fixed.
        return frozenset(
            QueueId(u ^ (1 << i), "B") for i in self._dims(ones)
        )


def test_dead_end_dynamic_links_detected():
    alg = _DeadEndRouting(Hypercube(3))
    report = verify_algorithm(alg, check_minimal=False, check_fully_adaptive=False)
    # Messages stranded in B with pending 0->1 corrections have no
    # static hop: the dead-end / termination checks must fire.
    assert not report.deadlock_free


class _AscendingDynamic(HypercubeHungRouting):
    """Dynamic links that ascend QDG levels (violates monotonicity).

    A phase-A message may set a bit that is *already correct* (a
    non-minimal detour deeper into the hung cube).  The static QDG
    stays acyclic, but deeper qA queues sit at strictly higher static
    levels, so these dynamic links ascend.
    """

    name = "ascending-dynamic"

    def dynamic_hops(self, q, dst, state=None):
        u = q.node
        if q.kind != "A" or u == dst:
            return frozenset()
        if not self._zeros_to_fix(u, dst):
            return frozenset()
        n = self.n
        both_zero = [
            i
            for i in range(n)
            if not (u >> i) & 1 and not (dst >> i) & 1
        ]
        return frozenset(QueueId(u | (1 << i), "A") for i in both_zero)


def test_level_violating_dynamic_links_detected():
    alg = _AscendingDynamic(Hypercube(3))
    report = verify_algorithm(alg, check_minimal=False)
    assert not report.level_monotone


def test_verify_with_pair_limit_runs_fast():
    alg = HypercubeAdaptiveRouting(Hypercube(4))
    report = verify_algorithm(alg, pair_limit=10)
    assert report.ok, report.errors


def test_report_records_true_error_total_past_cap():
    """``fail`` caps the stored counterexamples but must keep counting,
    and ``summary`` must say the list is truncated."""
    from repro.core.verification import VerificationReport

    report = VerificationReport(algorithm="x")
    for i in range(50):
        report.fail("static_acyclic", f"counterexample {i}")
    assert len(report.errors) == 20
    assert report.error_total == 50
    s = report.summary()
    assert "truncated" in s
    assert "showing 20 of 50" in s


def test_report_summary_untruncated_has_no_marker():
    from repro.core.verification import VerificationReport

    report = VerificationReport(algorithm="x")
    report.fail("static_acyclic", "one counterexample")
    assert report.error_total == 1
    assert "truncated" not in report.summary()


def test_cyclic_static_order_failure_carries_witness():
    """When the static QDG is cyclic the report attaches the analyzer's
    cycle witness, not just a prose error."""
    report = verify_algorithm(
        _SwapDeadlock(Hypercube(2)),
        check_minimal=False,
        check_fully_adaptive=False,
    )
    assert not report.static_acyclic
    assert report.witnesses
    assert len(report.witnesses[0]) >= 2
    assert "cycle" in " ".join(report.errors)
