"""Cross-engine telemetry identity.

The event log is part of the engines' observable behavior: at the same
seed, the reference and compiled engines must produce *byte-identical*
canonical JSONL event logs — healthy and under a fault schedule.  This
is the strongest cross-engine check in the suite (stronger than
latency-multiset equality): every inject/enqueue/hop/deliver must land
on the same packet at the same cycle with the same queue.
"""

import pytest

from repro.faults import FaultSchedule, link_down, link_stall, node_down
from repro.faults.experiments import make_fault_simulator
from repro.routing import HypercubeAdaptiveRouting, Mesh2DAdaptiveRouting
from repro.sim import RandomTraffic, StaticInjection, make_rng
from repro.core.message import reset_message_ids
from repro.telemetry import TelemetryProbe, read_jsonl
from repro.topology import Hypercube, Mesh2D

FAMILIES = {
    "hypercube": (lambda: Hypercube(4), HypercubeAdaptiveRouting),
    "mesh": (lambda: Mesh2D(5), Mesh2DAdaptiveRouting),
}

SCHEDULES = {
    "healthy": FaultSchedule.healthy,
    "immediate-links": lambda topo: FaultSchedule.random_links(
        topo, 3, seed=13
    ),
    "scripted-mixed": lambda topo: FaultSchedule.fixed(
        topo,
        [
            link_down(*_first_link(topo), at=4),
            link_stall(*_second_link(topo), at=6, until=60),
            node_down(_last_node(topo), at=15),
        ],
    ),
}


def _first_link(topo):
    return next(iter(sorted(topo.links(), key=repr)))


def _second_link(topo):
    links = sorted(topo.links(), key=repr)
    return links[len(links) // 2]


def _last_node(topo):
    return sorted(topo.nodes(), key=repr)[-1]


def _run(key, make_schedule, engine, seed=3):
    """One instrumented run; returns (probe, result)."""
    reset_message_ids()
    build, alg_cls = FAMILIES[key]
    topo = build()
    alg = alg_cls(topo)
    model = StaticInjection(2, RandomTraffic(topo), make_rng(seed))
    probe = TelemetryProbe()
    sim = make_fault_simulator(
        alg, model, make_schedule(topo), engine=engine, telemetry=probe
    )
    result = sim.run(max_cycles=500_000)
    return probe, result


@pytest.mark.parametrize("key", sorted(FAMILIES))
@pytest.mark.parametrize("name", sorted(SCHEDULES))
def test_event_logs_byte_identical(key, name):
    make_schedule = SCHEDULES[name]
    ref, _ = _run(key, make_schedule, "reference")
    com, _ = _run(key, make_schedule, "compiled")
    assert ref.log.to_jsonl() == com.log.to_jsonl()
    if name != "healthy":
        kinds = {r["kind"] for r in read_jsonl(ref.log.to_jsonl())}
        assert "epoch" in kinds


def _measured(summary):
    """A summary with the engine-specific fields masked.

    The engine name and the routing-compilation stats (plan-cache vs
    integer-table gauges, `docs/OBSERVABILITY.md`) describe *how* an
    engine ran, by construction per-engine; everything measured about
    the traffic itself must still be identical.
    """
    masked = dict(summary, engine="*", routing_compile="*")
    masked["metrics"] = {
        name: value
        for name, value in summary["metrics"].items()
        if not name.startswith(
            ("repro_tables_", "repro_plan_cache_", "repro_shard_")
        )
    }
    return masked


@pytest.mark.parametrize("key", sorted(FAMILIES))
def test_summaries_identical(key):
    ref, rres = _run(key, SCHEDULES["immediate-links"], "reference")
    com, cres = _run(key, SCHEDULES["immediate-links"], "compiled")
    # Engine name differs by construction; everything measured must not.
    assert _measured(ref.summary) == _measured(com.summary)
    assert rres.telemetry == ref.summary
    assert cres.telemetry == com.summary


def test_metrics_only_probe_matches_event_replay():
    """The streaming metrics sink and the event-log replay are the same
    aggregation: a metrics-only run must report identical counters."""
    snapshots = {}
    for events in (True, False):
        reset_message_ids()
        topo = Hypercube(4)
        probe = TelemetryProbe(events=events)
        sim = make_fault_simulator(
            HypercubeAdaptiveRouting(topo),
            StaticInjection(2, RandomTraffic(topo), make_rng(3)),
            FaultSchedule.random_links(topo, 3, seed=13),
            engine="compiled",
            telemetry=probe,
        )
        sim.run(max_cycles=500_000)
        snapshots[events] = probe.registry.snapshot()
        if not events:
            assert probe.log is None
    assert snapshots[True] == snapshots[False]


def _traffic_metrics(snapshot):
    """Registry snapshot minus the compilation gauges.

    ``repro_tables_compile_seconds`` is wall-clock and legitimately
    differs between two runs; the traffic aggregation must not.
    """
    return {
        name: value
        for name, value in snapshot.items()
        if not name.startswith(
            ("repro_tables_", "repro_plan_cache_", "repro_shard_")
        )
    }


def _run_healthy_direct(key, engine_cls, seed=3, events=True):
    """One healthy instrumented run with a directly-attached probe.

    The vector engine takes no fault observers, so it cannot go through
    :func:`make_fault_simulator`; attaching the probe directly compares
    all three generic engines on equal footing.
    """
    reset_message_ids()
    build, alg_cls = FAMILIES[key]
    topo = build()
    model = StaticInjection(2, RandomTraffic(topo), make_rng(seed))
    probe = TelemetryProbe(events=events)
    sim = engine_cls(alg_cls(topo), model)
    probe.attach(sim)
    result = sim.run(max_cycles=500_000)
    return probe, result


@pytest.mark.parametrize("key", sorted(FAMILIES))
def test_vector_event_log_byte_identical(key):
    """The vector engine's buffered columnar events must flush to the
    same canonical JSONL bytes as the reference engine's."""
    from repro.sim.engine import PacketSimulator
    from repro.sim.vector import VectorSimulator

    ref, rres = _run_healthy_direct(key, PacketSimulator)
    vec, vres = _run_healthy_direct(key, VectorSimulator)
    assert ref.log.to_jsonl() == vec.log.to_jsonl()
    assert _measured(ref.summary) == _measured(vec.summary)
    assert vres.telemetry == vec.summary


def test_vector_metrics_only_probe_matches_event_replay():
    """The vector engine's bulk metrics path (columnar flush into the
    streaming sink) must aggregate exactly like the event-log replay."""
    from repro.sim.vector import VectorSimulator

    snapshots = {}
    for events in (True, False):
        probe, _ = _run_healthy_direct(
            "hypercube", VectorSimulator, events=events
        )
        snapshots[events] = probe.registry.snapshot()
        if not events:
            assert probe.log is None
    assert _traffic_metrics(snapshots[True]) == _traffic_metrics(
        snapshots[False]
    )


@pytest.mark.parametrize("key", sorted(FAMILIES))
def test_sharded_event_log_byte_identical(key):
    """The sharded engine's merged per-shard event streams must flush to
    the same canonical JSONL bytes as the reference engine's."""
    from repro.sim.engine import PacketSimulator
    from repro.sim.sharded import ShardedSimulator

    ref, rres = _run_healthy_direct(key, PacketSimulator)
    shd, sres = _run_healthy_direct(
        key, lambda alg, model: ShardedSimulator(alg, model, shards=2)
    )
    assert ref.log.to_jsonl() == shd.log.to_jsonl()
    assert _measured(ref.summary) == _measured(shd.summary)
    assert sres.telemetry == shd.summary
    # The sharded run additionally reports per-shard gauges.
    assert shd.summary["metrics"]["repro_shard_count"]["value"] == 2


def test_sharded_metrics_only_probe_matches_event_replay():
    """The sharded engine's merged histogram/series flush must aggregate
    exactly like the event-log replay."""
    from repro.sim.sharded import ShardedSimulator

    snapshots = {}
    for events in (True, False):
        probe, _ = _run_healthy_direct(
            "hypercube",
            lambda alg, model: ShardedSimulator(
                alg, model, shards=2, inline=True
            ),
            events=events,
        )
        snapshots[events] = probe.registry.snapshot()
        if not events:
            assert probe.log is None
    assert _traffic_metrics(snapshots[True]) == _traffic_metrics(
        snapshots[False]
    )


def test_timeline_reconstruction_consistent_across_engines():
    timelines = {}
    for engine in ("reference", "compiled"):
        probe, _ = _run("hypercube", SCHEDULES["healthy"], engine)
        timelines[engine] = probe.log.timelines()
    assert timelines["reference"] == timelines["compiled"]
    assert timelines["reference"]  # non-empty
