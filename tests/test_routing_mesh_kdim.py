"""Parameterized verification of the k-dimensional mesh algorithms.

The paper states the 2-D technique "can be easily generalized for
k-dimensional meshes, for any arbitrary k"; these tests certify the
generalization over a grid of shapes.
"""

import pytest

from repro.core import verify_algorithm
from repro.routing import (
    MeshAdaptiveRouting,
    MeshObliviousRouting,
    MeshRestrictedRouting,
)
from repro.sim import PacketSimulator, RandomTraffic, StaticInjection, make_rng
from repro.topology import Mesh

SHAPES = [(2, 2), (3, 2), (4, 3), (2, 2, 2), (3, 2, 2)]


@pytest.mark.parametrize("shape", SHAPES, ids=str)
def test_adaptive_verifies(shape):
    report = verify_algorithm(MeshAdaptiveRouting(Mesh(shape)))
    assert report.ok, (shape, report.errors)


@pytest.mark.parametrize("shape", SHAPES, ids=str)
def test_restricted_verifies_minimal_not_fully_adaptive(shape):
    alg = MeshRestrictedRouting(Mesh(shape))
    report = verify_algorithm(alg, check_fully_adaptive=False)
    assert report.deadlock_free and report.minimal, report.errors


@pytest.mark.parametrize("shape", [(3, 3), (2, 2, 2)], ids=str)
def test_oblivious_verifies(shape):
    report = verify_algorithm(
        MeshObliviousRouting(Mesh(shape)), check_fully_adaptive=False
    )
    assert report.deadlock_free and report.minimal, report.errors


@pytest.mark.parametrize("shape", [(3, 3, 3), (4, 4, 2)], ids=str)
def test_3d_simulation_drains(shape):
    mesh = Mesh(shape)
    alg = MeshAdaptiveRouting(mesh)
    inj = StaticInjection(2, RandomTraffic(mesh), make_rng(0))
    res = PacketSimulator(alg, inj).run(max_cycles=100_000)
    assert res.delivered == res.injected


def test_restricted_not_fully_adaptive_on_3d():
    from repro.core import is_fully_adaptive_for_pair

    alg = MeshRestrictedRouting(Mesh((2, 2, 2)))
    # A mixed-direction pair has restricted choices.
    assert not is_fully_adaptive_for_pair(alg, (1, 0, 0), (0, 1, 1))
