"""Tests for the Beneš network topology and leveled routing."""

import pytest

from repro.core import (
    minimal_node_paths,
    realizable_node_paths,
    verify_algorithm,
)
from repro.routing import (
    BenesAdaptiveRouting,
    BenesObliviousRouting,
    BenesTraffic,
)
from repro.sim import PacketSimulator, StaticInjection, make_rng
from repro.topology import BenesNetwork


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------
def test_structure():
    b = BenesNetwork(3)
    assert b.num_nodes == 7 * 8
    assert b.diameter == 6
    assert len(b.inputs()) == 8 and len(b.outputs()) == 8
    b.validate()


def test_rejects_n_zero():
    with pytest.raises(ValueError):
        BenesNetwork(0)


def test_stage_bits_mirror():
    b = BenesNetwork(3)
    assert [b.stage_bit(l) for l in range(6)] == [2, 1, 0, 0, 1, 2]
    with pytest.raises(ValueError):
        b.stage_bit(6)


def test_neighbors_forward_only():
    b = BenesNetwork(2)
    assert set(b.neighbors((0, 0))) == {(1, 0), (1, 2)}  # stage 0 flips bit 1
    assert b.neighbors((4, 0)) == ()  # outputs are sinks
    assert b.in_neighbors((0, 0)) == ()


def test_distance_and_reachability():
    b = BenesNetwork(2)
    assert b.distance((0, 0), (4, 3)) == 4
    assert b.distance((1, 0), (2, 0)) == 1
    with pytest.raises(ValueError):
        b.distance((2, 0), (1, 0))  # backward
    with pytest.raises(ValueError):
        # From level 3 only bit 1 can still change: row 0 -> row 1 at
        # the output is unreachable.
        b.distance((3, 0), (4, 1))


def test_every_output_reachable_from_every_input():
    b = BenesNetwork(3)
    for r in range(b.rows):
        for r2 in range(b.rows):
            assert b.distance((0, r), (2 * b.n, r2)) == 2 * b.n


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
def test_requires_benes():
    from repro.topology import Hypercube

    with pytest.raises(TypeError):
        BenesAdaptiveRouting(Hypercube(3))


def test_single_central_queue():
    alg = BenesAdaptiveRouting(BenesNetwork(2))
    assert alg.central_queue_kinds((0, 0)) == ("Q",)


def test_path_richness_2_to_the_n():
    b = BenesNetwork(3)
    alg = BenesAdaptiveRouting(b)
    paths = realizable_node_paths(alg, (0, 5), (6, 2))
    assert len(paths) == 2**3
    assert paths == minimal_node_paths(b, (0, 5), (6, 2))


def test_oblivious_single_path():
    alg = BenesObliviousRouting(BenesNetwork(2))
    assert len(realizable_node_paths(alg, (0, 1), (4, 2))) == 1


def test_verification_input_output():
    b = BenesNetwork(2)
    alg = BenesAdaptiveRouting(b)
    report = verify_algorithm(
        alg, sources=b.inputs(), destinations=b.outputs()
    )
    assert report.ok, report.errors
    assert report.fully_adaptive and report.minimal


def test_injection_rejects_non_terminals():
    alg = BenesAdaptiveRouting(BenesNetwork(2))
    with pytest.raises(ValueError):
        alg.injection_targets((1, 0), (4, 0))
    with pytest.raises(ValueError):
        alg.injection_targets((0, 0), (2, 0))


def test_forced_half_fixes_bits():
    b = BenesNetwork(2)
    alg = BenesAdaptiveRouting(b)
    # At level 2 (start of the forced half), stage fixes bit 0.
    hops = alg.static_hops(
        __import__("repro.core", fromlist=["QueueId"]).QueueId((2, 0), "Q"),
        (4, 3),
    )
    assert {q.node for q in hops} == {(3, 1)}


# ----------------------------------------------------------------------
# Traffic + simulation
# ----------------------------------------------------------------------
def test_traffic_only_inputs_inject():
    b = BenesNetwork(2)
    t = BenesTraffic(b)
    rng = make_rng(0)
    assert t.draw((1, 0), rng) == (1, 0)  # silent
    dst = t.draw((0, 0), rng)
    assert dst[0] == 4


def test_permutation_traffic_needs_rng():
    with pytest.raises(ValueError):
        BenesTraffic(BenesNetwork(2), permutation=True)


def test_permutation_traffic_bijective():
    b = BenesNetwork(3)
    t = BenesTraffic(b, make_rng(1), permutation=True)
    targets = [t.mapping[(0, r)] for r in range(8)]
    assert len(set(targets)) == 8


def test_simulation_delivers_all():
    b = BenesNetwork(3)
    alg = BenesAdaptiveRouting(b)
    inj = StaticInjection(3, BenesTraffic(b), make_rng(2))
    res = PacketSimulator(alg, inj).run(max_cycles=50_000)
    assert res.delivered == res.injected == 3 * b.rows
    # Leveled latency law: 2 * 2n + 1 minimum per packet.
    assert res.latency.minimum >= 2 * (2 * b.n) + 1


def test_saturation_no_deadlock():
    from repro.sim import DynamicInjection

    b = BenesNetwork(3)
    alg = BenesAdaptiveRouting(b)
    inj = DynamicInjection(
        1.0, BenesTraffic(b), make_rng(3), duration=200, warmup=50
    )
    res = PacketSimulator(alg, inj, central_capacity=1, stall_limit=300).run()
    assert res.delivered > 0
