"""The static analyzer: certification, witnesses, registry sweep.

These are the acceptance-criteria tests for the lint gate: the five
shipped topology/algorithm pairs certify statically, the deliberately
broken torus scheme is refuted with a concrete minimal forced-wait
witness, and the whole registry matches its declared expectations
(which is exactly what ``repro lint --all`` asserts in CI).
"""

import pytest

from repro.statics import (
    StaticAnalysis,
    analyze_algorithm,
    analyze_wormhole,
    cycle_witness,
    lint_targets,
)
from repro.statics.examples import broken_torus
from repro.statics.registry import DEGRADED, FAIL, PASS, gate_ok, target_by_key
from repro.statics.witness import (
    DenseQueueIndex,
    ESCAPE_CDG,
    FORCED_WAIT,
    STATIC_ORDER,
)

SHIPPED = ["hypercube-adaptive", "mesh-adaptive", "torus",
           "shuffle-exchange", "ccc"]


@pytest.mark.parametrize("key", SHIPPED)
def test_shipped_pairs_statically_certified(key):
    t = target_by_key(key)
    a = t.analyze()
    assert isinstance(a, StaticAnalysis)
    assert a.certified, a.report.summary()
    assert not a.witnesses
    assert "[CERTIFIED]" in a.summary()


def test_broken_torus_minimal_forced_wait_witness():
    """Unrestricted minimal adaptive routing on a torus with no dynamic
    links deadlocks; the analyzer's witness is the head-on 2-cycle."""
    a = analyze_algorithm(broken_torus(5))
    assert not a.certified
    assert a.witnesses
    wit = a.witnesses[0]
    assert wit.kind == FORCED_WAIT
    assert len(wit) == 2
    assert wit.replayable
    # Head-on: each row's destination is the other row's node, and
    # each wait is forced (single candidate next queue).
    rows = wit.rows
    assert rows[0].dst == rows[1].queue.node
    assert rows[1].dst == rows[0].queue.node
    assert all(r.forced for r in rows)
    assert "forced-wait" in wit.describe()
    assert "[NOT DEADLOCK-FREE]" in a.summary()


def test_witness_rows_carry_engine_dense_ids():
    alg = broken_torus(5)
    idx = DenseQueueIndex(alg)
    a = analyze_algorithm(alg)
    for row in a.witnesses[0].rows:
        qid = idx.id_of(row.queue)
        assert idx.queue(qid) == row.queue


def test_witness_to_dict_roundtrips_rows():
    a = analyze_algorithm(broken_torus(5))
    d = a.witnesses[0].to_dict()
    assert d["kind"] == FORCED_WAIT
    assert d["replayable"] is True
    assert len(d["rows"]) == 2
    for row in d["rows"]:
        assert {"queue", "next_queue", "dst", "forced"} <= set(row)


def test_cycle_witness_none_on_certified_scheme(cube_adaptive):
    from repro.core.qdg import explore

    exp = explore(cube_adaptive)
    assert cycle_witness(cube_adaptive, exp) is None


def test_registry_sweep_matches_expectations():
    """The CI gate condition: every registered target — packet,
    wormhole, and fault-epoch — matches its declared expectation."""
    targets = lint_targets()
    assert len(targets) >= 16
    keys = {t.key for t in targets}
    assert set(SHIPPED) <= keys
    assert "unrestricted-torus" in keys
    assert any(k.startswith("wh-") for k in keys)
    assert any(k.startswith("faults-") for k in keys)
    for t in targets:
        a = t.analyze()
        assert gate_ok(a, t.expect), (
            f"{t.key} (expect={t.expect}): {a.report.summary()}"
        )


def test_expect_fail_targets_produce_witnesses():
    """expect=fail keeps the witness machinery itself under test."""
    for key in ("unrestricted-torus", "wh-hypercube-hung-escape"):
        a = target_by_key(key).analyze()
        assert not a.certified
        assert a.witnesses, key


def test_wormhole_witness_kind():
    a = target_by_key("wh-hypercube-hung-escape").analyze()
    assert a.model == "wormhole"
    wit = a.witnesses[0]
    assert wit.kind == ESCAPE_CDG
    assert not wit.replayable


def test_wormhole_certified(cube3):
    from repro.wormhole.routing import HypercubeEcubeWormhole

    a = analyze_wormhole(HypercubeEcubeWormhole(cube3))
    assert a.certified and not a.witnesses


def test_fault_epoch_targets_degraded_with_evidence():
    for t in lint_targets():
        if not t.key.startswith("faults-"):
            continue
        assert t.expect == DEGRADED
        a = t.analyze()
        if not a.certified:
            assert a.report.errors or a.witnesses


def test_gate_ok_semantics():
    a_pass = target_by_key("torus").analyze()
    a_fail = target_by_key("unrestricted-torus").analyze()
    assert gate_ok(a_pass, PASS) and not gate_ok(a_fail, PASS)
    assert gate_ok(a_fail, FAIL) and not gate_ok(a_pass, FAIL)
    assert gate_ok(a_pass, DEGRADED) and gate_ok(a_fail, DEGRADED)
    with pytest.raises(ValueError):
        gate_ok(a_pass, "bogus")


def test_analysis_stats_present(cube_adaptive):
    a = analyze_algorithm(cube_adaptive)
    assert a.stats["queues"] > 0
    assert a.stats["configurations"] > 0


def test_static_order_fallback_witness():
    """A scheme whose static order is cyclic but where no wait is
    forced still gets a (non-replayable) static-order witness."""
    for t in lint_targets():
        if t.key == "faults-hypercube-epoch0":
            a = t.analyze()
            assert a.witnesses
            assert a.witnesses[0].kind in (STATIC_ORDER, FORCED_WAIT)
            break
    else:  # pragma: no cover
        pytest.fail("epoch0 target missing")
